"""Per-family bot pools: placement, recruitment, and participant sampling.

A :class:`BotPool` holds every bot the monitoring service ever enumerates
for one family (the Botlist side of the dataset) and implements the
sampling used when the family launches an attack.  Three properties of
the paper's data are engineered here:

* **Geolocation affinity** (§IV-A): bots are placed in the family's home
  countries (plus a thin global tail), so weekly country footprints are
  sticky.

* **Dispersion control** (Figs 9-11, Table IV): sampling is
  *closed-loop*.  The base draw takes bots from one city cluster, whose
  tight jitter makes the signed-distance sum naturally small; the loop
  then recomputes the exact dispersion the analysis will measure
  (geographic centre of the sample, absolute signed Haversine sum) and
  appends bots picked *by value* from a per-attack candidate ladder —
  same-city bots offer fine rungs, random pool bots offer coarse ones —
  until the measured value lands at the target: ≈0 for symmetric
  attacks, the drawn residual for asymmetric ones.  The per-bot effect
  is attenuated by the centre shifting toward each addition, so the loop
  estimates that gain adaptively from observed effects.

* **Shift patterns** (Fig 8): a small share of bots is recruited
  mid-window from *expansion countries*, producing the rare new-country
  shifts the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..geo.haversine import geographic_center, signed_distances_km
from ..geo.ipam import SequentialAssigner
from ..geo.mapping import GeoIPService
from ..geo.world import World
from ..simulation.clock import ObservationWindow
from .family import FamilyProfile

__all__ = ["BotPool", "BotPoolPlan"]

#: Fraction of the pool recruited after the window start (growth), and
#: fraction of the window over which that growth is spread.
_GROWTH_FRACTION = 0.15
_GROWTH_SPAN = 0.6

#: Expansion-country bots as a fraction of the pool (at least 12 per country).
_EXPANSION_FRACTION = 0.02

#: Feedback rounds, candidate-ladder size and base acceptance band (km).
_FEEDBACK_ROUNDS = 18
_CANDIDATES = 192
_FEEDBACK_TOL_KM = 40.0

#: Initial estimate of the effective per-bot gain: adding a bot with
#: local signed distance ``s`` moves the measured residual by roughly
#: ``gain * s`` (the sample centre shifts toward the new bot).  Refined
#: adaptively from observed effects.
_FEEDBACK_GAIN0 = 0.45


@dataclass
class BotPoolPlan:
    """The parent-process half of a :class:`BotPool` build.

    Captures every draw that touches shared mutable state — the
    country/org multinomials and the :class:`SequentialAssigner` IP
    takes — as a list of placement batches plus the mid-state generator,
    so :meth:`BotPool.finish` can complete the pool in a worker process
    without coordinating address space across families.
    """

    family: str
    #: ``(org_index, country_index, city_index, asn, ips, expansion_flag)``
    #: in placement order.
    batches: list[tuple[int, int, int, int, np.ndarray, bool]]
    #: expansion-country index -> bot count (drives the recruit bursts).
    exp_counts: dict[int, int]
    #: The family's ``bots.<name>`` stream, mid-state; ``finish``
    #: continues it so plan+finish draws exactly match a one-shot build.
    rng: np.random.Generator


@dataclass
class BotPool:
    """All bots of one family, with the sampling structures precomputed."""

    family: str
    # Per-bot arrays (length n_bots).
    ip: np.ndarray = field(repr=False, default=None)
    lat: np.ndarray = field(repr=False, default=None)
    lon: np.ndarray = field(repr=False, default=None)
    country_idx: np.ndarray = field(repr=False, default=None)
    city_idx: np.ndarray = field(repr=False, default=None)
    org_idx: np.ndarray = field(repr=False, default=None)
    asn: np.ndarray = field(repr=False, default=None)
    botnet_id: np.ndarray = field(repr=False, default=None)
    recruit_ts: np.ndarray = field(repr=False, default=None)
    # Core bots sorted by recruit time (the sampling universe).
    core_by_recruit: np.ndarray = field(repr=False, default=None)
    core_recruit: np.ndarray = field(repr=False, default=None)
    # Per-city structures: bots of each city sorted by recruit time.
    city_ids: np.ndarray = field(repr=False, default=None)
    city_weights: np.ndarray = field(repr=False, default=None)
    city_bots: dict = field(repr=False, default_factory=dict)
    city_recruits: dict = field(repr=False, default_factory=dict)
    #: country index -> its city ids, largest bot population first.
    country_cities: dict = field(repr=False, default_factory=dict)
    # Expansion bots sorted by recruit time.
    expansion_idx: np.ndarray = field(repr=False, default=None)
    expansion_recruit: np.ndarray = field(repr=False, default=None)
    center: tuple[float, float] = (0.0, 0.0)

    @property
    def n_bots(self) -> int:
        return self.ip.size

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        profile: FamilyProfile,
        world: World,
        assigner: SequentialAssigner,
        geoip: GeoIPService,
        rng: np.random.Generator,
        window: ObservationWindow,
        attacker_country_indices: np.ndarray,
        attacker_country_weights: np.ndarray,
        botnet_ids: np.ndarray,
        home_share: float = 0.90,
    ) -> "BotPool":
        """Place the family's bots and precompute the sampling structures.

        ``attacker_country_indices/weights`` define the global tail pool
        (Table III: bots across all families span 186 countries); each
        family draws ``1 - home_share`` of its bots from it.

        Implemented as :meth:`plan` (parent-only: multinomials + shared
        IP assigner) followed by :meth:`finish` (world-local: coords,
        recruitment, sampling structures) so generation shards can run
        the second half in worker processes; the split is draw-for-draw
        identical to the historical one-shot build.
        """
        plan = cls.plan(
            profile, world, assigner, rng,
            attacker_country_indices, attacker_country_weights,
            home_share=home_share,
        )
        return cls.finish(plan, profile, world, geoip, window, botnet_ids)

    @classmethod
    def plan(
        cls,
        profile: FamilyProfile,
        world: World,
        assigner: SequentialAssigner,
        rng: np.random.Generator,
        attacker_country_indices: np.ndarray,
        attacker_country_weights: np.ndarray,
        home_share: float = 0.90,
    ) -> BotPoolPlan:
        """Draw the country/org placement and take the IP batches (parent-side)."""
        n_total = profile.n_bots
        expansion = list(profile.expansion_countries)
        n_expansion = 0
        if expansion:
            n_expansion = max(12 * len(expansion), int(n_total * _EXPANSION_FRACTION))
            n_expansion = min(n_expansion, n_total // 4)
        n_core = n_total - n_expansion

        # --- country assignment for core bots --------------------------
        home_idx = np.array(
            [world.country_by_code(cc).index for cc, _w in profile.home_countries],
            dtype=np.int64,
        )
        home_w = np.array([w for _cc, w in profile.home_countries], dtype=float)
        home_w = home_w / home_w.sum()
        n_home = int(round(n_core * home_share))
        n_tail = n_core - n_home
        counts: dict[int, int] = {}
        home_draw = rng.multinomial(n_home, home_w)
        for c_idx, cnt in zip(home_idx, home_draw):
            counts[int(c_idx)] = counts.get(int(c_idx), 0) + int(cnt)
        if n_tail > 0:
            tail_w = attacker_country_weights / attacker_country_weights.sum()
            tail_draw = rng.multinomial(n_tail, tail_w)
            for c_idx, cnt in zip(attacker_country_indices, tail_draw):
                if cnt:
                    counts[int(c_idx)] = counts.get(int(c_idx), 0) + int(cnt)

        # --- expansion-country bots ------------------------------------
        exp_counts: dict[int, int] = {}
        if n_expansion:
            per = n_expansion // len(expansion)
            leftover = n_expansion - per * len(expansion)
            for j, cc in enumerate(expansion):
                c_idx = world.country_by_code(cc).index
                exp_counts[c_idx] = per + (1 if j < leftover else 0)

        # --- materialise bots country by country, org by org -----------
        batches: list[tuple[int, int, int, int, np.ndarray, bool]] = []

        def place(country_index: int, n: int, expansion_flag: bool) -> None:
            org_ids, org_w = world.org_weights_of(country_index)
            if org_ids.size == 0:
                raise RuntimeError(f"country {country_index} has no organizations")
            per_org = rng.multinomial(n, org_w)
            order = np.argsort(-per_org)
            remainder = 0
            for pos in order:
                want = int(per_org[pos]) + remainder
                remainder = 0
                if want == 0:
                    continue
                org_index = int(org_ids[pos])
                available = assigner.remaining(org_index)
                got = min(want, available)
                if got < want:
                    remainder = want - got
                if got == 0:
                    continue
                batch = assigner.take(org_index, got)
                org = world.organizations[org_index]
                batches.append(
                    (org_index, country_index, org.city_index, org.asn, batch, expansion_flag)
                )
            if remainder:
                raise RuntimeError(
                    f"{profile.name}: country {country_index} address space "
                    f"exhausted ({remainder} bots unplaced)"
                )

        for c_idx in sorted(counts):
            place(c_idx, counts[c_idx], expansion_flag=False)
        for c_idx in sorted(exp_counts):
            place(c_idx, exp_counts[c_idx], expansion_flag=True)

        return BotPoolPlan(
            family=profile.name, batches=batches, exp_counts=exp_counts, rng=rng
        )

    @classmethod
    def finish(
        cls,
        plan: BotPoolPlan,
        profile: FamilyProfile,
        world: World,
        geoip: GeoIPService,
        window: ObservationWindow,
        botnet_ids: np.ndarray,
    ) -> "BotPool":
        """Complete a planned pool: coords, recruitment, sampling structures.

        Continues ``plan.rng`` exactly where :meth:`plan` stopped; safe
        to run in a forked worker because nothing here touches shared
        state (``coords_for_city`` is a pure function of the IP).
        """
        rng = plan.rng
        exp_counts = plan.exp_counts
        ips: list[np.ndarray] = []
        lats: list[np.ndarray] = []
        lons: list[np.ndarray] = []
        country_col: list[np.ndarray] = []
        city_col: list[np.ndarray] = []
        org_col: list[np.ndarray] = []
        asn_col: list[np.ndarray] = []
        is_expansion: list[np.ndarray] = []
        for org_index, country_index, city_index, asn, batch, expansion_flag in plan.batches:
            got = batch.size
            blats, blons = geoip.coords_for_city(city_index, batch)
            ips.append(batch)
            lats.append(blats)
            lons.append(blons)
            country_col.append(np.full(got, country_index, dtype=np.int16))
            city_col.append(np.full(got, city_index, dtype=np.int32))
            org_col.append(np.full(got, org_index, dtype=np.int32))
            asn_col.append(np.full(got, asn, dtype=np.int32))
            is_expansion.append(np.full(got, expansion_flag, dtype=bool))

        pool = cls(family=profile.name)
        pool.ip = np.concatenate(ips)
        pool.lat = np.concatenate(lats)
        pool.lon = np.concatenate(lons)
        pool.country_idx = np.concatenate(country_col)
        pool.city_idx = np.concatenate(city_col)
        pool.org_idx = np.concatenate(org_col)
        pool.asn = np.concatenate(asn_col)
        exp_mask = np.concatenate(is_expansion)
        n = pool.ip.size

        # --- botnet membership and recruitment --------------------------
        pool.botnet_id = botnet_ids[rng.integers(0, botnet_ids.size, size=n)].astype(np.int32)
        recruit = np.full(n, float(window.start))
        growth = rng.random(n) < _GROWTH_FRACTION
        span = window.duration * _GROWTH_SPAN
        recruit[growth] = window.start + rng.random(int(growth.sum())) * span
        # Expansion bots arrive in country-level bursts in the second
        # half of the family's active window.
        lo, hi = profile.active_window
        act_start = window.start + lo * window.duration
        act_end = window.start + hi * window.duration
        for c_idx in sorted(exp_counts):
            sel = exp_mask & (pool.country_idx == c_idx)
            burst = act_start + (0.4 + 0.5 * rng.random()) * (act_end - act_start)
            recruit[sel] = burst + rng.random(int(sel.sum())) * 7 * 86400.0
        pool.recruit_ts = recruit

        # --- sampling structures -----------------------------------------
        core = ~exp_mask
        pool.center = geographic_center(pool.lat[core], pool.lon[core])

        core_idx = np.flatnonzero(core)
        order = core_idx[np.argsort(recruit[core_idx], kind="stable")]
        pool.core_by_recruit = order.astype(np.int64)
        pool.core_recruit = recruit[order]

        cities, city_counts = np.unique(pool.city_idx[core_idx], return_counts=True)
        pool.city_ids = cities.astype(np.int64)
        pool.city_weights = city_counts.astype(float) / city_counts.sum()
        city_country: dict[int, int] = {}
        for city in cities:
            members = core_idx[pool.city_idx[core_idx] == city]
            members = members[np.argsort(recruit[members], kind="stable")]
            pool.city_bots[int(city)] = members.astype(np.int64)
            pool.city_recruits[int(city)] = recruit[members]
            city_country[int(city)] = int(pool.country_idx[members[0]])
        for city, country in city_country.items():
            pool.country_cities.setdefault(country, []).append(city)
        for country, members in pool.country_cities.items():
            members.sort(key=lambda c: -pool.city_bots[c].size)

        exp_idx = np.flatnonzero(exp_mask)
        exp_sort = np.argsort(recruit[exp_idx], kind="stable")
        pool.expansion_idx = exp_idx[exp_sort].astype(np.int64)
        pool.expansion_recruit = recruit[exp_idx][exp_sort]
        return pool

    # ------------------------------------------------------------------

    def _draw_city_base(
        self, rng: np.random.Generator, ts: float, magnitude: int
    ) -> np.ndarray:
        """Base draw: ``magnitude`` bots, preferably from ONE city cluster.

        A single-cluster base keeps the starting signed-distance residual
        within the cluster's jitter scale, which the feedback loop can
        then steer precisely.  Up to eight weighted draws look for a city
        with enough recruited bots; only if none is found does the base
        spill over multiple cities.
        """
        def recruited(city: int) -> int:
            n_rec = int(np.searchsorted(self.city_recruits[city], ts, side="right"))
            if n_rec == 0:
                n_rec = min(4, self.city_bots[city].size)  # pre-window fallback
            return n_rec

        best_city = -1
        best_n = 0
        for _ in range(10):
            city = int(self.city_ids[rng.choice(self.city_ids.size, p=self.city_weights)])
            n_rec = recruited(city)
            if n_rec >= magnitude:
                best_city = city
                best_n = n_rec
                break
            if n_rec > best_n:
                best_city = city
                best_n = n_rec

        picked: list[np.ndarray] = []
        need = magnitude
        if best_city >= 0 and best_n > 0:
            take = min(need, best_n)
            sel = rng.choice(best_n, size=take, replace=False)
            picked.append(self.city_bots[best_city][sel])
            need -= take
        if need > 0 and best_city >= 0:
            # Same-country spill-over first: keeps the base compact, so
            # the starting residual stays within the feedback loop's reach.
            country = int(self.country_idx[self.city_bots[best_city][0]])
            for city in self.country_cities.get(country, []):
                if need <= 0:
                    break
                if city == best_city:
                    continue
                n_rec = recruited(city)
                if n_rec == 0:
                    continue
                take = min(need, n_rec)
                sel = rng.choice(n_rec, size=take, replace=False)
                picked.append(self.city_bots[city][sel])
                need -= take
        if need > 0:
            # Last resort: top up from the recruited pool at large.
            n_rec = int(np.searchsorted(self.core_recruit, ts, side="right"))
            if n_rec == 0:
                n_rec = min(magnitude, self.core_by_recruit.size)
            sel = rng.integers(0, n_rec, size=need)
            picked.append(self.core_by_recruit[sel])
        return np.unique(np.concatenate(picked))

    def _candidate_ladder(
        self, rng: np.random.Generator, ts: float, sample: np.ndarray
    ) -> np.ndarray:
        """Candidate bots for feedback additions: fine/mid/coarse rungs.

        Same-city neighbours of the base sample give fine (tens of km)
        rungs, other cities of the same country give mid-range
        (hundreds of km) rungs, and a random slice of the recruited pool
        gives coarse (continental) ones — without the mid rungs,
        deficits of a few hundred km can only be chipped away slowly.
        """
        parts: list[np.ndarray] = []
        base_bot = int(sample[0])
        city = int(self.city_idx[base_bot])
        local = self.city_bots.get(city)
        if local is not None and local.size:
            k = min(local.size, _CANDIDATES // 2)
            parts.append(local[rng.integers(0, local.size, size=k)])
        country = int(self.country_idx[base_bot])
        siblings = self.country_cities.get(country, [])
        if len(siblings) > 1:
            for _ in range(min(6, len(siblings))):
                other = siblings[int(rng.integers(0, len(siblings)))]
                if other == city:
                    continue
                bots = self.city_bots[other]
                k = min(bots.size, _CANDIDATES // 8)
                parts.append(bots[rng.integers(0, bots.size, size=k)])
        n_rec = int(np.searchsorted(self.core_recruit, ts, side="right"))
        if n_rec == 0:
            n_rec = min(64, self.core_by_recruit.size)
        k = min(n_rec, _CANDIDATES)
        parts.append(self.core_by_recruit[rng.integers(0, n_rec, size=k)])
        cand = np.unique(np.concatenate(parts))
        return cand[~np.isin(cand, sample)]

    def _scan_candidates(
        self, sample: np.ndarray, candidates: np.ndarray, target: float
    ) -> tuple[int, float]:
        """Exact trial deficits for *every* candidate, vectorised.

        For each candidate, computes the deficit the sample would have
        after adding it — recomputed centre included — and returns the
        position and deficit of the best candidate.  Used when the cheap
        reach heuristic stalls.
        """
        s_lat = np.radians(self.lat[sample])
        s_lon = np.radians(self.lon[sample])
        c_lat = np.radians(self.lat[candidates])
        c_lon = np.radians(self.lon[candidates])
        # Per-candidate centre: sample unit-vector sum plus the candidate.
        sx = float(np.sum(np.cos(s_lat) * np.cos(s_lon)))
        sy = float(np.sum(np.cos(s_lat) * np.sin(s_lon)))
        sz = float(np.sum(np.sin(s_lat)))
        nx = sx + np.cos(c_lat) * np.cos(c_lon)
        ny = sy + np.cos(c_lat) * np.sin(c_lon)
        nz = sz + np.sin(c_lat)
        norm = np.maximum(np.sqrt(nx * nx + ny * ny + nz * nz), 1e-12)
        ctr_lat = np.arcsin(np.clip(nz / norm, -1.0, 1.0))
        ctr_lon = np.arctan2(ny, nx)

        def signed_sum(lat_r: np.ndarray, lon_r: np.ndarray) -> np.ndarray:
            """Signed sums of the given points against every centre."""
            dlat = lat_r[None, :] - ctr_lat[:, None]
            dlon = lon_r[None, :] - ctr_lon[:, None]
            a = (
                np.sin(dlat / 2.0) ** 2
                + np.cos(ctr_lat)[:, None] * np.cos(lat_r)[None, :] * np.sin(dlon / 2.0) ** 2
            )
            dist = 2.0 * 6371.0088 * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
            wrapped = np.mod(dlon + np.pi, 2.0 * np.pi) - np.pi
            sign = np.sign(wrapped)
            sign = np.where(sign == 0, np.sign(dlat), sign)
            return np.sum(sign * dist, axis=1)

        residual = signed_sum(s_lat, s_lon)
        # Plus each candidate's own contribution against its centre.
        dlat = c_lat - ctr_lat
        dlon = c_lon - ctr_lon
        a = np.sin(dlat / 2.0) ** 2 + np.cos(ctr_lat) * np.cos(c_lat) * np.sin(dlon / 2.0) ** 2
        dist = 2.0 * 6371.0088 * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
        wrapped = np.mod(dlon + np.pi, 2.0 * np.pi) - np.pi
        sign = np.sign(wrapped)
        sign = np.where(sign == 0, np.sign(dlat), sign)
        residual = residual + sign * dist
        deficits = target - residual
        pos = int(np.argmin(np.abs(deficits)))
        return pos, float(deficits[pos])

    def sample_participants(
        self,
        rng: np.random.Generator,
        ts: float,
        magnitude: int,
        symmetric: bool,
        target_residual_km: float = 0.0,
    ) -> np.ndarray:
        """Sample the bot indices participating in one attack.

        ``magnitude`` is the desired number of bots (the realised count
        can differ by a few after de-duplication and feedback additions).
        The sample's *measured* dispersion — geographic centre recomputed
        from the sample, absolute signed-distance sum — is steered to
        ``0`` for symmetric attacks and to ``target_residual_km`` for
        asymmetric ones.
        """
        if magnitude < 4:
            magnitude = 4
        sample = self._draw_city_base(rng, ts, magnitude)
        if not symmetric:
            # A few expansion bots ride along on asymmetric attacks.
            n_exp = int(np.searchsorted(self.expansion_recruit, ts, side="right"))
            if n_exp and rng.random() < 0.5:
                k = int(rng.integers(1, min(4, n_exp) + 1))
                sel = self.expansion_idx[rng.integers(0, n_exp, size=k)]
                sample = np.unique(np.concatenate([sample, sel]))

        target = 0.0 if symmetric else float(target_residual_km)
        tol = _FEEDBACK_TOL_KM if symmetric else max(_FEEDBACK_TOL_KM, 0.08 * target)
        candidates = self._candidate_ladder(rng, ts, sample)
        if candidates.size == 0:
            return np.sort(sample)

        def measure(arr: np.ndarray) -> float:
            """|target - residual| for a candidate sample (the analysis view)."""
            lats = self.lat[arr]
            lons = self.lon[arr]
            center = geographic_center(lats, lons)
            return target - float(np.sum(signed_distances_km(lats, lons, *center)))

        budget = max(6, magnitude // 2)
        deficit = measure(sample)
        for _ in range(_FEEDBACK_ROUNDS):
            if abs(deficit) <= tol or budget <= 0 or candidates.size == 0:
                break
            lats = self.lat[sample]
            lons = self.lon[sample]
            center = geographic_center(lats, lons)
            cand_s = signed_distances_km(
                self.lat[candidates], self.lon[candidates], *center
            )
            # Try a few reach levels (the per-bot effect is attenuated by
            # the centre shifting toward the addition); keep the trial
            # that shrinks the measured deficit the most, and stop when
            # no trial improves — the loop is monotone by construction.
            best_pos = -1
            best_deficit = deficit
            for reach in (1.0, 1.0 / _FEEDBACK_GAIN0, 2.0 / _FEEDBACK_GAIN0):
                want = deficit * reach
                pos = int(np.argmin(np.abs(cand_s - want)))
                trial = np.concatenate([sample, candidates[pos : pos + 1]])
                trial_deficit = measure(trial)
                if abs(trial_deficit) < abs(best_deficit):
                    best_deficit = trial_deficit
                    best_pos = pos
            if best_pos < 0:
                # The reach heuristic stalled (typically a ladder without
                # rungs in the needed range): scan every candidate exactly.
                pos, trial_deficit = self._scan_candidates(sample, candidates, target)
                if abs(trial_deficit) < abs(deficit):
                    best_deficit = trial_deficit
                    best_pos = pos
            if best_pos < 0:
                break
            sample = np.concatenate([sample, candidates[best_pos : best_pos + 1]])
            candidates = np.delete(candidates, best_pos)
            deficit = best_deficit
            budget -= 1
        return np.sort(sample)
