"""Snapshot tests for ``ddos-repro`` help output.

Every subcommand's ``--help`` text (and the top-level one) is a reviewed
golden file under ``tests/snapshots/cli_help/``.  After an intentional
CLI change, regenerate them with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/test_cli_help.py

and review the diff like any other code change.
"""

import argparse
import os
from pathlib import Path

import pytest

from repro.cli import build_parser

SNAPSHOT_DIR = Path(__file__).parent / "snapshots" / "cli_help"


def _parsers() -> dict[str, argparse.ArgumentParser]:
    """The top-level parser plus one entry per subcommand."""
    parser = build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return {"ddos-repro": parser, **action.choices}


@pytest.mark.parametrize("name", sorted(_parsers()))
def test_help_matches_snapshot(name, monkeypatch):
    monkeypatch.setenv("COLUMNS", "80")  # argparse wraps to the terminal width
    rendered = _parsers()[name].format_help()
    snap = SNAPSHOT_DIR / f"{name}.txt"
    if os.environ.get("REPRO_UPDATE_SNAPSHOTS"):
        snap.parent.mkdir(parents=True, exist_ok=True)
        snap.write_text(rendered)
    assert snap.exists(), f"missing snapshot {snap}; run with REPRO_UPDATE_SNAPSHOTS=1"
    assert rendered == snap.read_text(), (
        f"--help for {name!r} drifted from its snapshot; review the change and "
        "regenerate with REPRO_UPDATE_SNAPSHOTS=1"
    )


@pytest.mark.parametrize("name", [n for n in sorted(_parsers()) if n != "ddos-repro"])
def test_subcommand_has_description_and_epilog(name):
    sub = _parsers()[name]
    assert sub.description and len(sub.description.split()) >= 10, name
    assert sub.epilog and sub.epilog.startswith("example:"), name
    assert "ddos-repro" in sub.epilog, name
