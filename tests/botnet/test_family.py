"""Tests for family profile validation and scaling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.botnet.family import DispersionModel, DurationModel, FamilyProfile, GapMixture
from repro.monitor.schemas import Protocol


def minimal_profile(**overrides) -> FamilyProfile:
    base = dict(
        name="test",
        active=True,
        protocol_counts={Protocol.HTTP: 100},
        n_botnets=4,
        n_bots=500,
        n_targets=20,
        target_countries=(("US", 10.0), ("RU", 5.0)),
        n_target_countries=5,
        home_countries=(("US", 0.6), ("DE", 0.4)),
    )
    base.update(overrides)
    return FamilyProfile(**base)


class TestValidation:
    def test_valid_profile(self):
        profile = minimal_profile()
        assert profile.total_attacks == 100

    def test_active_needs_attacks(self):
        with pytest.raises(ValueError):
            minimal_profile(protocol_counts={})

    def test_inactive_must_not_attack(self):
        with pytest.raises(ValueError):
            minimal_profile(active=False)

    def test_attacks_must_cover_targets(self):
        with pytest.raises(ValueError):
            minimal_profile(n_targets=1000)

    def test_needs_home_countries(self):
        with pytest.raises(ValueError):
            minimal_profile(home_countries=())

    def test_bad_active_window(self):
        with pytest.raises(ValueError):
            minimal_profile(active_window=(0.5, 0.5))

    def test_bad_multi_wave(self):
        with pytest.raises(ValueError):
            minimal_profile(p_multi_wave=1.0)

    def test_bad_sync(self):
        with pytest.raises(ValueError):
            minimal_profile(sync_fraction=-0.1)


class TestSubModels:
    def test_gap_mixture_weights_must_sum(self):
        with pytest.raises(ValueError):
            GapMixture(mode_seconds=(1.0, 2.0), mode_weights=(0.5, 0.6))

    def test_gap_mixture_length_mismatch(self):
        with pytest.raises(ValueError):
            GapMixture(mode_seconds=(1.0,), mode_weights=(0.5, 0.5))

    def test_gap_mixture_positive_modes(self):
        with pytest.raises(ValueError):
            GapMixture(mode_seconds=(0.0, 1.0), mode_weights=(0.5, 0.5))

    def test_duration_model_validation(self):
        with pytest.raises(ValueError):
            DurationModel(sigma=0.0)
        with pytest.raises(ValueError):
            DurationModel(min_seconds=100.0, max_seconds=10.0)

    def test_dispersion_model_validation(self):
        with pytest.raises(ValueError):
            DispersionModel(p_symmetric=1.5)
        with pytest.raises(ValueError):
            DispersionModel(asym_median_km=-1.0)


class TestScaling:
    @given(st.floats(min_value=0.005, max_value=1.0))
    @settings(max_examples=60)
    def test_scaled_profiles_stay_valid(self, fraction):
        profile = minimal_profile(intra_collabs=20, chains=(5, 3.0))
        scaled = profile.scaled(fraction)
        # Constructor validation ran, so these invariants hold:
        assert scaled.total_attacks >= scaled.n_targets
        assert scaled.n_botnets >= 1
        assert scaled.n_bots >= 10

    def test_scale_one_is_identity_for_counts(self):
        profile = minimal_profile()
        scaled = profile.scaled(1.0)
        assert scaled.total_attacks == profile.total_attacks
        assert scaled.n_bots == profile.n_bots

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            minimal_profile().scaled(0.0)
        with pytest.raises(ValueError):
            minimal_profile().scaled(1.5)

    def test_structures_survive_scaling(self):
        profile = minimal_profile(intra_collabs=100, chains=(10, 4.0))
        scaled = profile.scaled(0.01)
        assert scaled.intra_collabs >= 1
        assert scaled.chains[0] >= 1
