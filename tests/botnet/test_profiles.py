"""Tests pinning the calibrated profiles to the paper's exact totals."""

from repro.botnet.profiles import (
    ACTIVE_FAMILY_NAMES,
    ALL_FAMILY_NAMES,
    INTER_FAMILY_COLLABS,
    MINOR_FAMILY_NAMES,
    default_profiles,
    profile_by_name,
)
from repro.monitor.schemas import Protocol

import pytest


class TestCensus:
    def test_23_families_10_active(self):
        profiles = default_profiles()
        assert len(profiles) == 23
        assert sum(p.active for p in profiles.values()) == 10
        assert set(ACTIVE_FAMILY_NAMES) == {n for n, p in profiles.items() if p.active}
        assert len(ALL_FAMILY_NAMES) == 23
        assert len(MINOR_FAMILY_NAMES) == 13

    def test_total_attacks_is_50704(self):
        profiles = default_profiles()
        assert sum(p.total_attacks for p in profiles.values()) == 50704

    def test_total_botnets_is_674(self):
        profiles = default_profiles()
        assert sum(p.n_botnets for p in profiles.values()) == 674

    def test_total_bots_is_310950(self):
        profiles = default_profiles()
        assert sum(p.n_bots for p in profiles.values()) == 310950

    def test_total_targets_is_9026(self):
        profiles = default_profiles()
        assert sum(p.n_targets for p in profiles.values()) == 9026


class TestTable2Cells:
    def test_dirtjumper_http(self):
        assert profile_by_name("dirtjumper").protocol_counts[Protocol.HTTP] == 34620

    def test_blackenergy_five_protocols(self):
        counts = profile_by_name("blackenergy").protocol_counts
        assert counts == {
            Protocol.HTTP: 3048,
            Protocol.TCP: 199,
            Protocol.ICMP: 147,
            Protocol.UDP: 71,
            Protocol.SYN: 31,
        }

    def test_darkshell_undetermined(self):
        assert profile_by_name("darkshell").protocol_counts[Protocol.UNDETERMINED] == 1530

    def test_yzf_three_way_split(self):
        counts = profile_by_name("yzf").protocol_counts
        assert counts[Protocol.HTTP] == 177
        assert counts[Protocol.TCP] == 182
        assert counts[Protocol.UDP] == 187


class TestBehaviouralCalibration:
    def test_blackenergy_active_one_third(self):
        lo, hi = profile_by_name("blackenergy").active_window
        assert 0.25 <= hi - lo <= 0.40

    def test_aldibot_optima_spaced(self):
        for name in ("aldibot", "optima"):
            profile = profile_by_name(name)
            assert profile.p_multi_wave == 0.0
            assert profile.gap_mixture.min_gap >= 60.0

    def test_table5_country_counts(self):
        expected = {
            "aldibot": 14, "blackenergy": 20, "colddeath": 16, "darkshell": 13,
            "ddoser": 19, "dirtjumper": 71, "nitol": 12, "optima": 12,
            "pandora": 43, "yzf": 11,
        }
        for name, n in expected.items():
            assert profile_by_name(name).n_target_countries == n, name

    def test_dirtjumper_collab_hub(self):
        profiles = default_profiles()
        dj = profiles["dirtjumper"]
        assert dj.intra_collabs == 756
        assert dj.collab_size_mean == pytest.approx(2.19)
        assert all(fam_a == "dirtjumper" for fam_a, _b, _n in INTER_FAMILY_COLLABS)
        pair_counts = {fam_b: n for _a, fam_b, n in INTER_FAMILY_COLLABS}
        assert pair_counts["pandora"] == 118

    def test_chain_families(self):
        with_chains = {
            n for n, p in default_profiles().items() if p.chains[0] > 0
        }
        assert with_chains == {"darkshell", "ddoser", "dirtjumper", "nitol"}

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            profile_by_name("mirai")

    def test_dispersion_ordering(self):
        # Table IV ordering: Blackenergy/Optima disperse far, Pandora and
        # Colddeath stay regional.
        med = {n: profile_by_name(n).dispersion.asym_median_km
               for n in ("blackenergy", "optima", "pandora", "colddeath")}
        assert med["blackenergy"] > med["pandora"]
        assert med["optima"] > med["colddeath"]
