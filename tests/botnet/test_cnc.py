"""Tests for botnet rosters."""

import numpy as np
import pytest

from repro.botnet.cnc import BotnetRoster
from repro.botnet.profiles import profile_by_name
from repro.geo.ipam import IPAllocator, SequentialAssigner
from repro.geo.world import World
from repro.simulation.clock import ObservationWindow
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def roster():
    streams = SeededStreams(11)
    world = World.build(streams)
    assigner = SequentialAssigner(IPAllocator(world, streams))
    profile = profile_by_name("pandora").scaled(0.1)
    return BotnetRoster.build(
        profile, world, assigner, streams.stream("roster"), ObservationWindow(), first_id=100
    )


class TestRoster:
    def test_ids_sequential_from_first(self, roster):
        assert roster.ids[0] == 100
        assert np.array_equal(roster.ids, 100 + np.arange(roster.n_botnets))

    def test_spans_inside_window(self, roster):
        window = ObservationWindow()
        assert np.all(roster.first_seen >= window.start)
        assert np.all(roster.last_seen <= window.end)
        assert np.all(roster.last_seen > roster.first_seen)

    def test_overlapping_generations(self, roster):
        # Mid-window there should be several concurrently active botnets
        # (collaborations need them).
        window = ObservationWindow()
        mid = window.start + window.duration / 2
        assert roster.active_at(mid).size >= 2

    def test_pick_distinct(self, roster):
        rng = np.random.default_rng(0)
        window = ObservationWindow()
        mid = window.start + window.duration / 2
        ids = roster.pick(rng, mid, k=3)
        assert np.unique(ids).size == 3

    def test_pick_outside_activity_fills_nearest(self, roster):
        rng = np.random.default_rng(0)
        ids = roster.pick(rng, ObservationWindow().start - 1e6, k=2)
        assert np.unique(ids).size == 2

    def test_pick_too_many(self, roster):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            roster.pick(rng, ObservationWindow().start, k=roster.n_botnets + 1)
        with pytest.raises(ValueError):
            roster.pick(rng, ObservationWindow().start, k=0)

    def test_controllers_allocated(self, roster):
        assert np.unique(roster.controller_ip).size == roster.n_botnets
