"""Tests for bot pools and the closed-loop participant sampler."""

import numpy as np
import pytest

from repro.botnet.bots import BotPool
from repro.botnet.profiles import profile_by_name
from repro.geo.haversine import dispersion_km
from repro.geo.ipam import IPAllocator, SequentialAssigner
from repro.geo.mapping import GeoIPService
from repro.geo.world import World
from repro.simulation.clock import ObservationWindow
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def env():
    streams = SeededStreams(13)
    world = World.build(streams)
    alloc = IPAllocator(world, streams)
    return streams, world, alloc, GeoIPService(world, alloc)


def build_pool(env, family="pandora", scale=0.1):
    streams, world, alloc, geoip = env
    assigner = SequentialAssigner(alloc)
    profile = profile_by_name(family).scaled(scale)
    countries = sorted(world.countries, key=lambda c: -c.weight)[:186]
    idx = np.array([c.index for c in countries])
    w = np.array([c.weight for c in countries])
    pool = BotPool.build(
        profile, world, assigner, geoip, streams.fresh(f"pool.{family}.{scale}"),
        ObservationWindow(), idx, w, np.arange(1, profile.n_botnets + 1),
    )
    return profile, pool


class TestBuild:
    def test_pool_size_matches_profile(self, env):
        profile, pool = build_pool(env)
        assert pool.n_bots == profile.n_bots

    def test_unique_ips(self, env):
        _profile, pool = build_pool(env)
        assert np.unique(pool.ip).size == pool.n_bots

    def test_home_countries_dominate(self, env):
        profile, pool = build_pool(env)
        _streams, world, *_ = env
        home = {world.country_by_code(cc).index for cc, _w in profile.home_countries}
        in_home = np.isin(pool.country_idx, list(home)).mean()
        assert in_home > 0.75

    def test_expansion_bots_recruited_late(self, env):
        profile, pool = build_pool(env)
        if pool.expansion_idx.size:
            window = ObservationWindow()
            frac = (pool.expansion_recruit - window.start) / window.duration
            assert np.all(frac > 0.2)

    def test_coords_match_geoip(self, env):
        _profile, pool = build_pool(env)
        _streams, _world, _alloc, geoip = env
        for b in (0, pool.n_bots // 2, pool.n_bots - 1):
            rec = geoip.lookup(int(pool.ip[b]))
            assert rec.lat == pytest.approx(float(pool.lat[b]))
            assert rec.lon == pytest.approx(float(pool.lon[b]))
            assert rec.country_index == int(pool.country_idx[b])

    def test_city_structures_cover_core(self, env):
        _profile, pool = build_pool(env)
        total = sum(v.size for v in pool.city_bots.values())
        assert total == pool.n_bots - pool.expansion_idx.size


class TestSampling:
    def test_symmetric_samples_have_small_dispersion(self, env):
        profile, pool = build_pool(env)
        rng = np.random.default_rng(0)
        ts = ObservationWindow().start + 5_000_000
        values = []
        for _ in range(30):
            idx = pool.sample_participants(rng, ts, 40, True, 0.0)
            values.append(dispersion_km(pool.lat[idx], pool.lon[idx]))
        assert float(np.median(values)) < 100.0

    def test_asymmetric_samples_track_target(self, env):
        profile, pool = build_pool(env)
        rng = np.random.default_rng(1)
        ts = ObservationWindow().start + 5_000_000
        for target in (300.0, 1500.0):
            measured = [
                dispersion_km(pool.lat[i], pool.lon[i])
                for i in (
                    pool.sample_participants(rng, ts, 40, False, target)
                    for _ in range(20)
                )
            ]
            assert float(np.median(measured)) == pytest.approx(target, rel=0.35)

    def test_magnitude_respected_roughly(self, env):
        _profile, pool = build_pool(env)
        rng = np.random.default_rng(2)
        ts = ObservationWindow().start + 1_000_000
        idx = pool.sample_participants(rng, ts, 60, True, 0.0)
        assert 30 <= idx.size <= 100

    def test_participants_unique_and_valid(self, env):
        _profile, pool = build_pool(env)
        rng = np.random.default_rng(3)
        idx = pool.sample_participants(rng, ObservationWindow().start, 24, False, 500.0)
        assert np.unique(idx).size == idx.size
        assert idx.min() >= 0 and idx.max() < pool.n_bots

    def test_minimum_magnitude(self, env):
        _profile, pool = build_pool(env)
        rng = np.random.default_rng(4)
        idx = pool.sample_participants(rng, ObservationWindow().start, 1, True, 0.0)
        assert idx.size >= 2

    def test_tiny_pool_still_works(self, env):
        _profile, pool = build_pool(env, family="aldibot", scale=0.02)
        rng = np.random.default_rng(5)
        idx = pool.sample_participants(rng, ObservationWindow().start + 100.0, 10, True, 0.0)
        assert idx.size >= 2
