"""Tests for the family attack scheduler."""

import numpy as np
import pytest

from repro.botnet.cnc import BotnetRoster
from repro.botnet.profiles import profile_by_name
from repro.botnet.scheduler import CollabKind, FamilyScheduler
from repro.geo.ipam import IPAllocator, SequentialAssigner
from repro.geo.world import World
from repro.simulation.clock import ObservationWindow
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def env():
    streams = SeededStreams(17)
    world = World.build(streams)
    assigner = SequentialAssigner(IPAllocator(world, streams))
    return streams, world, assigner


def plan_for(env, family="darkshell", scale=0.1, reserve=0, mega=0, seed_name="s"):
    streams, world, assigner = env
    profile = profile_by_name(family).scaled(scale)
    roster = BotnetRoster.build(
        profile, world, assigner, streams.fresh(f"r.{family}.{scale}"),
        ObservationWindow(), first_id=1,
    )
    scheduler = FamilyScheduler(
        profile, ObservationWindow(), roster, streams.fresh(seed_name),
        reserve_for_inter=reserve, mega_extra=mega,
    )
    plan, _next_group = scheduler.plan()
    return profile, plan


class TestBudget:
    def test_exact_attack_count(self, env):
        profile, plan = plan_for(env)
        assert len(plan.attacks) == profile.total_attacks

    def test_reserve_subtracts(self, env):
        profile, plan = plan_for(env, family="pandora", reserve=5, seed_name="s2")
        assert len(plan.attacks) == profile.total_attacks - 5
        assert plan.reserved == 5

    def test_reserve_too_large_raises(self, env):
        with pytest.raises(ValueError):
            plan_for(env, family="aldibot", scale=0.05, reserve=1000, seed_name="s3")

    def test_mega_day_attacks_on_day_one(self, env):
        profile, plan = plan_for(env, family="dirtjumper", scale=0.02, mega=20, seed_name="s4")
        window = ObservationWindow()
        mega = [a for a in plan.attacks if a.chain_id == -2]
        assert len(mega) == 20
        for attack in mega:
            assert window.day_index(attack.start) == 1


class TestStructures:
    def test_collab_groups_well_formed(self, env):
        profile, plan = plan_for(env, family="darkshell", scale=0.2, seed_name="s5")
        groups = {}
        for attack in plan.attacks:
            if attack.collab_kind == CollabKind.INTRA:
                groups.setdefault(attack.collab_group, []).append(attack)
        assert groups, "scaled darkshell should stage collaborations"
        for members in groups.values():
            assert len(members) >= 2
            starts = [a.start for a in members]
            assert max(starts) - min(starts) <= 60.0
            durations = [a.duration for a in members]
            assert max(durations) - min(durations) <= 1800.0
            botnets = {a.botnet_id for a in members}
            assert len(botnets) == len(members)
            magnitudes = {a.magnitude for a in members}
            assert len(magnitudes) == 1

    def test_chains_consecutive(self, env):
        profile, plan = plan_for(env, family="darkshell", scale=0.2, seed_name="s6")
        chains = {}
        for attack in plan.attacks:
            if attack.chain_id >= 0:
                chains.setdefault(attack.chain_id, []).append(attack)
        assert chains
        for members in chains.values():
            members.sort(key=lambda a: a.start)
            assert len(members) >= 2
            for prev, cur in zip(members, members[1:]):
                gap = cur.start - prev.end
                assert -1.0 <= gap <= 60.5
            # Consecutive members use different botnet ids.
            for prev, cur in zip(members, members[1:]):
                assert prev.botnet_id != cur.botnet_id

    def test_ddoser_long_chain_at_full_scale(self, env):
        profile, plan = plan_for(env, family="ddoser", scale=1.0, seed_name="s7")
        lengths = {}
        for attack in plan.attacks:
            if attack.chain_id >= 0:
                lengths[attack.chain_id] = lengths.get(attack.chain_id, 0) + 1
        assert max(lengths.values()) == 22

    def test_attacks_within_active_window(self, env):
        profile, plan = plan_for(env, family="blackenergy", scale=0.1, seed_name="s8")
        window = ObservationWindow()
        lo, hi = profile.active_window
        act_start = window.start + lo * window.duration
        act_end = window.start + hi * window.duration
        regular = [a for a in plan.attacks if a.collab_kind == 0 and a.chain_id == -1]
        starts = np.array([a.start for a in regular])
        assert np.all(starts >= act_start - 1)
        assert np.all(starts <= act_end + 1)


class TestTrimming:
    def test_oversized_structures_trimmed_to_budget(self, env):
        """A profile whose staged structures exceed its attacks still plans."""
        from repro.botnet.family import FamilyProfile
        from repro.monitor.schemas import Protocol

        streams, world, assigner = env
        profile = FamilyProfile(
            name="cramped",
            active=True,
            protocol_counts={Protocol.UDP: 12},
            n_botnets=4,
            n_bots=200,
            n_targets=4,
            target_countries=(("US", 1.0),),
            n_target_countries=2,
            home_countries=(("US", 1.0),),
            intra_collabs=10,          # would need >= 20 attacks
            chains=(5, 6.0),           # would need ~30 more
        )
        roster = BotnetRoster.build(
            profile, world, assigner, streams.fresh("trim"), ObservationWindow(), 1
        )
        scheduler = FamilyScheduler(
            profile, ObservationWindow(), roster, streams.fresh("trim2")
        )
        plan, _g = scheduler.plan()
        assert len(plan.attacks) == 12  # exact budget preserved

    def test_trim_drops_whole_events(self, env):
        from repro.botnet.family import FamilyProfile
        from repro.monitor.schemas import Protocol

        streams, world, assigner = env
        profile = FamilyProfile(
            name="cramped2",
            active=True,
            protocol_counts={Protocol.UDP: 9},
            n_botnets=4,
            n_bots=200,
            n_targets=2,
            target_countries=(("US", 1.0),),
            n_target_countries=1,
            home_countries=(("US", 1.0),),
            intra_collabs=6,
        )
        roster = BotnetRoster.build(
            profile, world, assigner, streams.fresh("trim3"), ObservationWindow(), 1
        )
        scheduler = FamilyScheduler(
            profile, ObservationWindow(), roster, streams.fresh("trim4")
        )
        plan, _g = scheduler.plan()
        groups = {}
        for attack in plan.attacks:
            if attack.collab_group >= 0:
                groups.setdefault(attack.collab_group, []).append(attack)
        # Surviving collaborations are complete (never half an event).
        for members in groups.values():
            assert len(members) >= 2


class TestTiming:
    def test_simultaneity_fraction(self, env):
        profile, plan = plan_for(env, family="dirtjumper", scale=0.2, seed_name="s9")
        starts = np.sort([a.start for a in plan.attacks])
        zero = float(np.mean(np.diff(starts) == 0))
        assert 0.3 < zero < 0.7

    def test_spaced_family_has_no_short_gaps(self, env):
        profile, plan = plan_for(env, family="optima", scale=0.5, seed_name="s10")
        regular = [a for a in plan.attacks if a.collab_kind == 0]
        starts = np.sort([a.start for a in regular])
        gaps = np.diff(starts)
        assert np.all(gaps[gaps > 0] >= 59.0)

    def test_durations_positive_and_bounded(self, env):
        profile, plan = plan_for(env, family="pandora", scale=0.1, seed_name="s11")
        for attack in plan.attacks:
            assert attack.duration >= 5.0
            assert attack.duration <= profile.duration.max_seconds + 1501
