"""HyperLogLog: accuracy across regimes, idempotence, union algebra.

The contract is the standard HLL band: the estimate sits within
``3 * 1.04 / sqrt(m)`` of the true cardinality (a >99.7 % band), across
the linear-counting regime (small n) and the raw harmonic-mean regime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import HyperLogLog


def _within_band(hll: HyperLogLog, true_n: int) -> bool:
    return abs(hll.estimate() - true_n) <= max(3 * hll.relative_error * true_n, 3.0)


class TestAccuracy:
    @pytest.mark.parametrize("n", [0, 1, 10, 500, 5_000, 100_000])
    def test_within_three_sigma(self, n):
        hll = HyperLogLog(precision=12, seed=7)
        hll.update(np.arange(n))
        assert _within_band(hll, n), (hll.estimate(), n)

    def test_string_keys(self):
        hll = HyperLogLog(precision=12, seed=7)
        hll.update([f"10.0.{i // 256}.{i % 256}" for i in range(2_000)])
        assert _within_band(hll, 2_000)

    def test_duplicates_do_not_move_estimate(self):
        hll = HyperLogLog(precision=12, seed=7)
        hll.update(np.arange(1_000))
        before = hll.estimate()
        hll.update(np.arange(1_000))
        hll.update(np.arange(500))
        assert hll.estimate() == before

    def test_memory_is_fixed(self):
        hll = HyperLogLog(precision=12, seed=7)
        assert hll.memory_bytes == 4096
        hll.update(np.arange(200_000))
        assert hll.memory_bytes == 4096


class TestAlgebra:
    def test_merge_is_union(self):
        whole = HyperLogLog(seed=7)
        whole.update(np.arange(10_000))
        left = HyperLogLog(seed=7)
        right = HyperLogLog(seed=7)
        left.update(np.arange(0, 7_000))
        right.update(np.arange(4_000, 10_000))  # overlapping halves
        left.merge(right)
        assert left.estimate() == whole.estimate()

    def test_merge_idempotent(self):
        a = HyperLogLog(seed=7)
        a.update(np.arange(1_000))
        before = a.estimate()
        a.merge(a.copy())
        assert a.estimate() == before

    def test_merge_rejects_mismatched_params(self):
        a = HyperLogLog(precision=12, seed=7)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(HyperLogLog(precision=13, seed=7))
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(HyperLogLog(precision=12, seed=8))
        with pytest.raises(TypeError):
            a.merge("not a sketch")


class TestState:
    def test_roundtrip_preserves_registers(self):
        hll = HyperLogLog(seed=7)
        hll.update(np.arange(5_000))
        revived = HyperLogLog.from_dict(hll.to_dict())
        assert revived.estimate() == hll.estimate()
        assert revived.precision == hll.precision

    def test_copy_is_independent(self):
        hll = HyperLogLog(seed=7)
        hll.update(np.arange(100))
        dup = hll.copy()
        dup.update(np.arange(100, 100_000))
        assert _within_band(hll, 100)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=19)
