"""Tests for the bounded-memory sketch layer (``repro.sketch``)."""
