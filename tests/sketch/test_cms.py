"""Count-Min Sketch: the one-sided error contract, algebra, state.

The contract under test is the classic CM guarantee: estimates never
under-count, and over-count by at most ``epsilon * total`` (here checked
deterministically for *every* key, not just with probability 1 - delta,
because the test stream is far below the collision regime).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import CountMinSketch


def _skewed_stream(n_keys: int, seed: int = 7):
    """Zipf-ish key frequencies, like attacks-per-family."""
    rng = np.random.default_rng(seed)
    keys = np.array([f"key-{i}" for i in range(n_keys)], dtype=object)
    counts = np.maximum(1, (5000 / np.arange(1, n_keys + 1)).astype(np.int64))
    rng.shuffle(counts)
    return keys, counts


class TestContract:
    def test_never_undercounts_and_respects_epsilon(self):
        cms = CountMinSketch(epsilon=0.001, delta=0.01, seed=7)
        keys, counts = _skewed_stream(500)
        cms.update(keys, counts)
        total = int(counts.sum())
        assert cms.total == total
        got = cms.estimate_many(keys)
        true = counts
        assert np.all(got >= true), "CMS must never under-count"
        assert np.all(got <= true + cms.epsilon * total)

    def test_absent_key_bounded(self):
        cms = CountMinSketch(epsilon=0.001, delta=0.01, seed=7)
        keys, counts = _skewed_stream(200)
        cms.update(keys, counts)
        assert 0 <= cms.estimate("never-seen") <= cms.epsilon * cms.total

    def test_unit_counts_default(self):
        cms = CountMinSketch(seed=7)
        cms.update(["a", "a", "b"])
        assert cms.total == 3
        assert cms.estimate("a") >= 2
        assert cms.estimate("b") >= 1

    def test_dimensions_from_epsilon_delta(self):
        cms = CountMinSketch(epsilon=0.001, delta=0.01)
        assert cms.width == int(np.ceil(np.e / 0.001))
        assert cms.depth == max(1, int(np.ceil(np.log(1.0 / 0.01))))
        assert cms.memory_bytes == cms.width * cms.depth * 8

    def test_integer_keys_accepted(self):
        cms = CountMinSketch(seed=7)
        cms.update(np.arange(100), np.ones(100, dtype=np.int64))
        assert cms.estimate(int(np.arange(100)[3])) >= 1


class TestAlgebra:
    def test_merge_equals_single_pass(self):
        keys, counts = _skewed_stream(300)
        whole = CountMinSketch(seed=7)
        whole.update(keys, counts)
        left = CountMinSketch(seed=7)
        right = CountMinSketch(seed=7)
        left.update(keys[:150], counts[:150])
        right.update(keys[150:], counts[150:])
        left.merge(right)
        assert left.total == whole.total
        np.testing.assert_array_equal(
            left.estimate_many(keys), whole.estimate_many(keys)
        )

    def test_merge_rejects_mismatched_params(self):
        a = CountMinSketch(epsilon=0.001, seed=7)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(CountMinSketch(epsilon=0.01, seed=7))
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(CountMinSketch(epsilon=0.001, seed=8))
        with pytest.raises(TypeError):
            a.merge(object())


class TestState:
    def test_roundtrip_preserves_estimates(self):
        cms = CountMinSketch(seed=7)
        keys, counts = _skewed_stream(100)
        cms.update(keys, counts)
        revived = CountMinSketch.from_dict(cms.to_dict())
        assert revived.total == cms.total
        np.testing.assert_array_equal(
            revived.estimate_many(keys), cms.estimate_many(keys)
        )

    def test_copy_is_independent(self):
        cms = CountMinSketch(seed=7)
        cms.update(["a"])
        dup = cms.copy()
        dup.update(["a"] * 10)
        assert cms.estimate("a") == 1
        assert dup.estimate("a") >= 11

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            CountMinSketch(delta=1.5)
