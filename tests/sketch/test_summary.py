"""AttackStreamSummary: parity with exact answers on a known dataset.

The summary's exact-vs-sketch parity is checked against the generator's
ground truth at test scale: family counts within the CMS slack, distinct
counts within the HLL band, quantiles within the KLL rank error, and the
exact bookkeeping (record count, family/country sets) bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import AttackStreamSummary, render_sketch_report, summarize_dataset


@pytest.fixture(scope="module")
def summary(tiny_ds):
    return summarize_dataset(tiny_ds)


class TestParity:
    def test_exact_bookkeeping(self, tiny_ds, summary):
        assert summary.n_records == tiny_ds.n_attacks
        assert summary.families == sorted(tiny_ds.active_families)

    def test_family_counts_within_cms_slack(self, tiny_ds, summary):
        est = summary.estimate()
        idx = np.asarray(tiny_ds.family_idx)
        slack = summary.cms_family.epsilon * summary.cms_family.total
        for i, fam in enumerate(tiny_ds.families):
            true = int(np.sum(idx == i))
            if true == 0:
                continue
            assert true <= est["families"][fam] <= true + slack, fam

    def test_distinct_within_hll_band(self, tiny_ds, summary):
        est = summary.estimate()["distinct"]
        true_botnets = len(set(r.botnet_id for r in tiny_ds.iter_attacks()))
        true_victims = len(set(r.target_ip for r in tiny_ds.iter_attacks()))
        rse = summary.hll_botnets.relative_error
        assert abs(est["botnets"] - true_botnets) <= max(3 * rse * true_botnets, 3)
        assert abs(est["victims"] - true_victims) <= max(3 * rse * true_victims, 3)

    def test_duration_quantiles_within_rank_error(self, tiny_ds, summary):
        est = summary.estimate()
        durations = np.sort(np.asarray(tiny_ds.end) - np.asarray(tiny_ds.start))
        err = summary.kll_duration.rank_error
        for key, q in (("p10", 0.1), ("p50", 0.5), ("p90", 0.9)):
            got = est["duration_seconds"][key]
            true_rank = np.searchsorted(durations, got, side="right") / durations.size
            assert abs(true_rank - q) <= err + 1.0 / durations.size, key

    def test_interval_count(self, tiny_ds, summary):
        # One pass over a sorted stream sees exactly n-1 consecutive gaps.
        assert summary.kll_interval.n == tiny_ds.n_attacks - 1

    def test_batched_equals_single_pass(self, tiny_ds, summary):
        batched = AttackStreamSummary()
        records = sorted(tiny_ds.iter_attacks(), key=lambda r: r.timestamp)
        for i in range(0, len(records), 37):
            batched.update(records[i : i + 37])
        assert batched.n_records == summary.n_records
        # In-order batching preserves the interval stream (boundary gaps
        # stitch the batches), so distincts and family counts agree.
        assert batched.estimate()["distinct"] == summary.estimate()["distinct"]
        assert batched.estimate()["families"] == summary.estimate()["families"]
        assert batched.kll_interval.n == summary.kll_interval.n


class TestContractAndState:
    def test_contract_shape(self, summary):
        contract = summary.contract()
        assert contract["cms"]["epsilon"] == 0.001
        assert contract["cms"]["delta"] == 0.01
        assert contract["hll"]["relative_standard_error"] == pytest.approx(
            1.04 / np.sqrt(4096)
        )
        assert contract["kll"]["rank_error"] == pytest.approx(2.3 / 200 ** 0.9)
        for structure in contract.values():
            assert "bound" in structure

    def test_memory_is_bounded_and_reported(self, summary):
        # Three CMS tables dominate; the whole bundle stays under 1 MiB.
        assert 0 < summary.memory_bytes() < 1 << 20

    def test_roundtrip_preserves_estimates(self, summary):
        revived = AttackStreamSummary.from_dict(summary.to_dict())
        assert revived.n_records == summary.n_records
        assert revived.estimate() == summary.estimate()
        assert revived.params == summary.params

    def test_copy_is_independent(self, summary, tiny_ds):
        dup = summary.copy()
        dup.update(list(tiny_ds.iter_attacks())[:10])
        assert dup.n_records == summary.n_records + 10
        assert summary.n_records == tiny_ds.n_attacks

    def test_empty_summary(self):
        est = AttackStreamSummary().estimate()
        assert est["n_records"] == 0
        assert est["families"] == {}
        assert np.isnan(est["duration_seconds"]["p50"])


class TestReport:
    def test_render_mentions_scale_and_budget(self, summary):
        text = render_sketch_report(summary)
        assert text.startswith(f"Sketch summary over {summary.n_records:,} attacks")
        assert "approximate" in text
        assert "resident sketch memory" in text

    def test_render_empty(self):
        text = render_sketch_report(AttackStreamSummary())
        assert "0 attacks" in text
