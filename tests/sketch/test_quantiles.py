"""KLL quantiles and reservoir sampling: rank error, algebra, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch import KLLSketch, ReservoirSample


def _true_rank(sorted_values: np.ndarray, value: float) -> float:
    return float(np.searchsorted(sorted_values, value, side="right")) / sorted_values.size


class TestKLLAccuracy:
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "bimodal"])
    def test_rank_error_within_contract(self, dist):
        rng = np.random.default_rng(7)
        n = 50_000
        if dist == "uniform":
            data = rng.uniform(0, 1000, n)
        elif dist == "lognormal":
            data = rng.lognormal(3.0, 1.5, n)  # duration-like heavy tail
        else:
            data = np.concatenate([rng.normal(10, 1, n // 2), rng.normal(1000, 5, n - n // 2)])
        kll = KLLSketch(k=200, seed=7)
        for chunk in np.array_split(data, 13):  # uneven batch sizes
            kll.update(chunk)
        assert kll.n == n
        truth = np.sort(data)
        for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            got = kll.quantile(q)
            assert abs(_true_rank(truth, got) - q) <= kll.rank_error, (dist, q)

    def test_extremes_are_exact(self):
        kll = KLLSketch(seed=7)
        kll.update([5.0, -3.0, 17.0, 2.0])
        assert kll.quantile(0.0) == -3.0
        assert kll.quantile(1.0) == 17.0

    def test_empty_returns_nan(self):
        kll = KLLSketch(seed=7)
        assert np.isnan(kll.quantile(0.5))
        assert np.isnan(kll.rank(1.0))

    def test_small_stream_is_exact(self):
        kll = KLLSketch(k=200, seed=7)
        kll.update(np.arange(100, dtype=np.float64))
        # Below the first compaction everything is retained at weight 1.
        assert abs(kll.quantile(0.5) - 49.5) <= 1.0

    def test_memory_stays_bounded(self):
        kll = KLLSketch(k=200, seed=7)
        rng = np.random.default_rng(7)
        sizes = []
        for _ in range(20):
            kll.update(rng.uniform(0, 1, 25_000))
            sizes.append(kll.memory_bytes)
        # Logarithmic growth: half a million items fit in a few KiB.
        assert sizes[-1] < 64 * 1024
        assert kll.n == 500_000

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            KLLSketch(k=4)
        kll = KLLSketch(seed=7)
        with pytest.raises(ValueError):
            kll.quantile(1.5)


class TestKLLAlgebra:
    def test_merge_keeps_contract(self):
        rng = np.random.default_rng(7)
        data = rng.lognormal(2.0, 1.0, 40_000)
        parts = np.array_split(data, 4)
        sketches = [KLLSketch(k=200, seed=7) for _ in parts]
        for sk, part in zip(sketches, parts):
            sk.update(part)
        merged = sketches[0]
        for sk in sketches[1:]:
            merged.merge(sk)
        assert merged.n == data.size
        truth = np.sort(data)
        for q in (0.1, 0.5, 0.9):
            got = merged.quantile(q)
            assert abs(_true_rank(truth, got) - q) <= merged.rank_error

    def test_merge_rejects_mismatched_params(self):
        a = KLLSketch(k=200, seed=7)
        with pytest.raises(ValueError, match="cannot merge"):
            a.merge(KLLSketch(k=100, seed=7))
        with pytest.raises(TypeError):
            a.merge(42)


class TestKLLState:
    def test_roundtrip_preserves_estimates(self):
        kll = KLLSketch(seed=7)
        kll.update(np.random.default_rng(7).uniform(0, 1, 30_000))
        revived = KLLSketch.from_dict(kll.to_dict())
        assert revived.n == kll.n
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert revived.quantile(q) == kll.quantile(q)

    def test_roundtrip_empty(self):
        revived = KLLSketch.from_dict(KLLSketch(seed=7).to_dict())
        assert revived.n == 0 and np.isnan(revived.quantile(0.5))

    def test_copy_is_independent(self):
        kll = KLLSketch(seed=7)
        kll.update([1.0, 2.0, 3.0])
        dup = kll.copy()
        dup.update(np.full(10_000, 99.0))
        assert kll.n == 3 and kll.quantile(1.0) == 3.0


class TestReservoir:
    def test_below_capacity_keeps_everything(self):
        res = ReservoirSample(size=100, seed=7)
        res.update(np.arange(60, dtype=np.float64))
        np.testing.assert_array_equal(np.sort(res.values()), np.arange(60))
        assert res.n == 60

    def test_capacity_and_count(self):
        res = ReservoirSample(size=64, seed=7)
        res.update(np.arange(10_000))
        assert res.values().size == 64
        assert res.n == 10_000
        assert res.memory_bytes == 64 * 8

    def test_sample_is_roughly_uniform(self):
        res = ReservoirSample(size=2_000, seed=7)
        res.update(np.arange(100_000, dtype=np.float64))
        # A uniform sample's mean sits near the stream mean.
        assert abs(res.values().mean() - 49_999.5) < 5_000

    def test_merge_tracks_population(self):
        a = ReservoirSample(size=500, seed=7)
        b = ReservoirSample(size=500, seed=7)
        a.update(np.zeros(9_000))
        b.update(np.ones(1_000))
        a.merge(b)
        assert a.n == 10_000
        frac_ones = float(a.values().mean())
        assert 0.02 <= frac_ones <= 0.25  # ~0.1 expected

    def test_merge_with_empty_is_identity(self):
        a = ReservoirSample(size=10, seed=7)
        a.update(np.arange(5, dtype=np.float64))
        before = np.sort(a.values())
        a.merge(ReservoirSample(size=10, seed=7))
        np.testing.assert_array_equal(np.sort(a.values()), before)

    def test_roundtrip(self):
        res = ReservoirSample(size=32, seed=7)
        res.update(np.arange(1_000))
        revived = ReservoirSample.from_dict(res.to_dict())
        assert revived.n == res.n
        np.testing.assert_array_equal(revived.values(), res.values())

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ReservoirSample(size=0)
