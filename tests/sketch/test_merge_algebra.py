"""Sketch merge algebra: shard-split parity, order invariance, full scale.

Mirrors ``tests/core/test_shard_merge.py``: a summary reduced over
K ∈ {1, 2, 5} time-window shards must answer like the one-pass summary
over the unsharded stream, merge order must not matter for the
order-free members (CMS / HLL are exactly commutative and associative),
and the ``slow``-marked sweep re-pins the documented epsilon/delta
bounds at the scale named by ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.merge import sketch_summaries
from repro.io.colstore import ShardedDatasetStore
from repro.sketch import AttackStreamSummary, summarize_dataset


def _shard_summaries(ds, k: int) -> list:
    store = ShardedDatasetStore.partition(ds, shards=k)
    return [summarize_dataset(store.load_shard(i)) for i in range(store.n_shards)]


@pytest.fixture(scope="module")
def whole(tiny_ds):
    return summarize_dataset(tiny_ds)


class TestShardParity:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_reduced_equals_one_pass(self, tiny_ds, whole, k):
        merged = sketch_summaries(_shard_summaries(tiny_ds, k))
        assert merged.n_records == whole.n_records
        assert merged.families == whole.families
        assert merged.countries == whole.countries
        # CMS tables and HLL registers add/maximise exactly, so the
        # counting answers are bit-equal to the one-pass summary.
        est_m, est_w = merged.estimate(), whole.estimate()
        assert est_m["families"] == est_w["families"]
        assert est_m["top_countries"] == est_w["top_countries"]
        assert est_m["distinct"] == est_w["distinct"]

    @pytest.mark.parametrize("k", [2, 5])
    def test_interval_stream_loses_only_boundaries(self, tiny_ds, whole, k):
        merged = sketch_summaries(_shard_summaries(tiny_ds, k))
        # Each shard boundary drops exactly one spanning interval.
        assert merged.kll_interval.n == whole.kll_interval.n - (k - 1)
        assert merged.kll_duration.n == whole.kll_duration.n


class TestOrderInvariance:
    def test_counting_members_commute(self, tiny_ds):
        parts = _shard_summaries(tiny_ds, 5)
        forward = sketch_summaries([p.copy() for p in parts])
        reversed_ = sketch_summaries([p.copy() for p in reversed(parts)])
        ef, er = forward.estimate(), reversed_.estimate()
        assert ef["families"] == er["families"]
        assert ef["distinct"] == er["distinct"]
        assert ef["n_records"] == er["n_records"]
        np.testing.assert_array_equal(
            forward.cms_victim._table, reversed_.cms_victim._table
        )
        np.testing.assert_array_equal(
            forward.hll_victims._registers, reversed_.hll_victims._registers
        )

    def test_associativity_of_counting_members(self, tiny_ds):
        a, b, c = _shard_summaries(tiny_ds, 3)
        left = a.copy().merge(b.copy()).merge(c.copy())
        right = a.copy().merge(b.copy().merge(c.copy()))
        np.testing.assert_array_equal(left.cms_family._table, right.cms_family._table)
        np.testing.assert_array_equal(
            left.hll_botnets._registers, right.hll_botnets._registers
        )
        assert left.n_records == right.n_records

    def test_merge_does_not_mutate_right_operand(self, tiny_ds):
        a, b = _shard_summaries(tiny_ds, 2)
        b_records = b.n_records
        b_table = b.cms_family._table.copy()
        a.merge(b)
        assert b.n_records == b_records
        np.testing.assert_array_equal(b.cms_family._table, b_table)

    def test_merge_rejects_mismatched_params(self, tiny_ds):
        a = summarize_dataset(tiny_ds)
        with pytest.raises(ValueError, match="different params"):
            a.merge(AttackStreamSummary(epsilon=0.01))

    def test_reduce_rejects_empty(self):
        with pytest.raises(ValueError):
            sketch_summaries([])


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_SCALE"),
    reason="set REPRO_BENCH_SCALE to run the full-scale sketch parity sweep",
)
def test_full_scale_epsilon_bounds():
    """The documented epsilon/delta contract at benchmark scale."""
    from repro import api

    scale = float(os.environ["REPRO_BENCH_SCALE"])
    ds = api.generate(scale=scale)
    summary = summarize_dataset(ds)
    assert summary.n_records == ds.n_attacks

    # CMS: the one-sided bound holds for every family, deterministically.
    est = summary.estimate()
    idx = np.asarray(ds.family_idx)
    slack = summary.cms_family.epsilon * summary.cms_family.total
    for i, fam in enumerate(ds.families):
        true = int(np.sum(idx == i))
        if true:
            assert true <= est["families"][fam] <= true + slack, fam

    # HLL: distincts within the 3-sigma band.
    true_botnets = len(set(r.botnet_id for r in ds.iter_attacks()))
    rse = summary.hll_botnets.relative_error
    got = est["distinct"]["botnets"]
    assert abs(got - true_botnets) <= max(3 * rse * true_botnets, 3)

    # KLL: duration quantiles within the documented rank error.
    durations = np.sort(np.asarray(ds.end) - np.asarray(ds.start))
    err = summary.kll_duration.rank_error
    for key, q in (("p10", 0.1), ("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
        got = est["duration_seconds"][key]
        true_rank = np.searchsorted(durations, got, side="right") / durations.size
        assert abs(true_rank - q) <= err, key
