"""docs/STREAMING.md is a tested contract, like the metric catalogue.

Three guarantees: every fenced ``python`` block in the document
executes (in order, sharing one namespace — the blocks form one
narrative); every relative markdown link resolves to a real file; and
the ε/δ literals quoted in the accuracy-contract table match the
library defaults, so the documented contract cannot drift from the
code.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

DOC = Path(__file__).resolve().parent.parent / "docs" / "STREAMING.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)\)")


def test_python_blocks_execute():
    blocks = _FENCE.findall(DOC.read_text())
    assert len(blocks) >= 4, "expected the four worked examples"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"STREAMING.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assert is the report
            pytest.fail(f"STREAMING.md block {i} failed: {exc!r}\n{block}")


def test_relative_links_resolve():
    for target in _LINK.findall(DOC.read_text()):
        if target.startswith(("http://", "https://")):
            continue
        assert (DOC.parent / target).exists(), f"dead link in STREAMING.md: {target}"


def test_documented_literals_match_defaults():
    from repro.sketch import AttackStreamSummary

    text = DOC.read_text()
    summary = AttackStreamSummary()
    contract = summary.contract()
    # The table quotes the construction defaults...
    assert f"`epsilon={contract['cms']['epsilon']}`" in text
    assert f"`delta={contract['cms']['delta']}`" in text
    assert f"`precision={summary.params['precision']}`" in text
    assert f"`k={summary.params['k']}`" in text
    assert f"`reservoir_size={summary.params['reservoir_size']}`" in text
    # ...and the derived error budgets to two significant figures.
    rse_pct = contract["hll"]["relative_standard_error"] * 100
    assert f"±{rse_pct:.2f} % RSE" in text
    rank_pct = contract["kll"]["rank_error"] * 100
    assert f"±{rank_pct:.2f} %" in text


def test_cross_references_exist():
    # The documents that promise to link back here actually do.
    docs = DOC.parent
    assert "STREAMING.md" in (docs / "ARCHITECTURE.md").read_text()
    assert "STREAMING.md" in (docs.parent / "README.md").read_text()
