"""Service tests over a real socket: round-trips, isolation, parity.

Everything here talks HTTP to a live :class:`repro.serve.AnalysisServer`
bound to a loopback port — no mocked transport — because the contract
under test is the served byte stream: status codes, ``Retry-After``,
and renders byte-identical to a local :func:`repro.api.run_all`.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.serve import AnalysisServer
from repro.serve.codec import record_to_json


def _call(base: str, method: str, path: str, payload: dict | None = None):
    """One HTTP round-trip; returns (status, decoded-JSON-body, headers)."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture(scope="module")
def rows(tiny_ds):
    """The tiny dataset as Table I row dicts (the wire schema)."""
    return [record_to_json(r) for r in tiny_ds.iter_attacks()]


@pytest.fixture()
def server():
    with AnalysisServer(port=0, queue_size=4, keep_epochs=4) as srv:
        yield srv


class TestRoundTrips:
    def test_healthz(self, server):
        status, body, _ = _call(server.url, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        import repro

        assert body["version"] == repro.__version__

    def test_ingest_then_snapshot(self, server, rows):
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:50]}
        )
        assert status == 200
        assert body == {
            "tenant": "t",
            "accepted": 50,
            "epoch": 1,
            "n_attacks": 50,
        }
        status, snap, _ = _call(server.url, "GET", "/v1/snapshot?tenant=t")
        assert status == 200
        assert snap["epoch"] == 1
        assert snap["n_attacks"] == 50
        assert snap["window"]["n_days"] >= 1
        assert snap["retained_epochs"] == [1]

    def test_async_ingest_returns_202(self, server, rows):
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=t&wait=0", {"records": rows[:5]}
        )
        assert status == 202
        assert body["queued"] is True

    def test_single_experiment(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:50]})
        status, listing, _ = _call(server.url, "GET", "/v1/experiments?tenant=t")
        assert status == 200
        exp_id = listing["experiments"][0]["id"]
        status, single, _ = _call(
            server.url, "GET", f"/v1/experiments/{exp_id}?tenant=t"
        )
        assert status == 200
        assert single["id"] == exp_id
        assert single["render"] == listing["experiments"][0]["render"]

    def test_metrics_scrape(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:5]})
        status, metrics, _ = _call(server.url, "GET", "/v1/metrics")
        assert status == 200
        assert "serve.requests" in metrics
        assert "serve.ingest.records" in metrics


class TestErrorMapping:
    def test_unknown_route_404(self, server):
        status, body, _ = _call(server.url, "GET", "/v1/nowhere")
        assert (status, body["error"]) == (404, "NotFoundError")

    def test_unknown_tenant_404(self, server):
        status, body, _ = _call(server.url, "GET", "/v1/snapshot?tenant=ghost")
        assert (status, body["error"]) == (404, "NotFoundError")

    def test_unknown_experiment_404(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:50]})
        status, body, _ = _call(server.url, "GET", "/v1/experiments/nope?tenant=t")
        assert (status, body["error"]) == (404, "NotFoundError")

    def test_wrong_method_405(self, server):
        status, body, _ = _call(server.url, "DELETE", "/v1/snapshot")
        assert (status, body["error"]) == (405, "MethodNotAllowedError")
        status, body, _ = _call(server.url, "GET", "/v1/ingest")
        assert status == 405

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/ingest", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_empty_batch_400(self, server):
        status, body, _ = _call(server.url, "POST", "/v1/ingest", {"records": []})
        assert (status, body["error"]) == (400, "FormatError")

    def test_malformed_row_400_names_the_index(self, server, rows):
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest", {"records": [rows[0], {"bogus": 1}]}
        )
        assert (status, body["error"]) == (400, "FormatError")
        assert "records[1]" in body["detail"]

    def test_invalid_record_422(self, server, rows):
        bad = dict(rows[0])
        bad["end_time"] = bad["timestamp"] - 10.0  # ends before it starts
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=t", {"records": [bad]}
        )
        assert (status, body["error"]) == (422, "IngestError")

    def test_query_before_any_ingest_409(self, server, rows):
        # The tenant exists (created by an admission that never folded:
        # pause first) but has no published epoch yet.
        tenant = server.tenants.get_or_create("empty")
        tenant.pause()
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=empty&wait=0", {"records": rows[:1]}
        )
        assert status == 202
        status, body, _ = _call(server.url, "GET", "/v1/experiments?tenant=empty")
        assert (status, body["error"]) == (409, "ConflictError")
        tenant.resume()

    def test_non_integer_epoch_400(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:5]})
        status, body, _ = _call(server.url, "GET", "/v1/snapshot?tenant=t&epoch=x")
        assert (status, body["error"]) == (400, "FormatError")


class TestBackpressure:
    def test_full_queue_returns_429_with_retry_after(self, server, rows):
        tenant = server.tenants.get_or_create("bp")
        tenant.pause()
        try:
            statuses = []
            last_headers = {}
            # queue_size=4 plus the one batch the paused writer already
            # holds: admissions stop within a bounded number of posts.
            for _ in range(10):
                status, body, headers = _call(
                    server.url, "POST", "/v1/ingest?tenant=bp&wait=0",
                    {"records": rows[:1]},
                )
                statuses.append(status)
                last_headers = headers
            assert statuses[-1] == 429
            assert 202 in statuses
            assert float(last_headers["Retry-After"]) > 0
        finally:
            tenant.resume()
        # Once resumed, the held batches fold and ingest works again.
        deadline = time.monotonic() + 60
        while tenant.queue_depth and time.monotonic() < deadline:
            time.sleep(0.05)
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=bp", {"records": rows[:1]}
        )
        assert status == 200

    def test_rejected_counter_increments(self, server, rows):
        import repro.obs as obs

        tenant = server.tenants.get_or_create("bp2")
        tenant.pause()
        try:
            before = obs.registry().counter("serve.ingest.rejected").value
            for _ in range(10):
                _call(
                    server.url, "POST", "/v1/ingest?tenant=bp2&wait=0",
                    {"records": rows[:1]},
                )
            after = obs.registry().counter("serve.ingest.rejected").value
            assert after > before
        finally:
            tenant.resume()


class TestEpochIsolation:
    def test_pinned_epoch_is_immutable_across_appends(self, server, rows):
        base = server.url
        _call(base, "POST", "/v1/ingest?tenant=iso", {"records": rows[:80]})
        status, first, _ = _call(base, "GET", "/v1/experiments?tenant=iso&epoch=1")
        assert status == 200
        _call(base, "POST", "/v1/ingest?tenant=iso", {"records": rows[80:]})
        status, pinned, _ = _call(base, "GET", "/v1/experiments?tenant=iso&epoch=1")
        assert status == 200
        assert pinned == first  # epoch 1 unchanged by the epoch-2 append
        status, latest, _ = _call(base, "GET", "/v1/experiments?tenant=iso")
        assert latest["epoch"] == 2
        assert latest != first

    def test_evicted_epoch_404(self, rows):
        with AnalysisServer(port=0, keep_epochs=1) as srv:
            for lo in (0, 10, 20):
                _call(
                    srv.url, "POST", "/v1/ingest?tenant=t",
                    {"records": rows[lo:lo + 10]},
                )
            status, body, _ = _call(srv.url, "GET", "/v1/snapshot?tenant=t&epoch=1")
            assert (status, body["error"]) == (404, "NotFoundError")
            status, snap, _ = _call(srv.url, "GET", "/v1/snapshot?tenant=t")
            assert snap["retained_epochs"] == [3]

    def test_concurrent_readers_see_consistent_epochs(self, server, rows):
        """Readers hammering the service mid-append never see a torn state."""
        base = server.url
        _call(base, "POST", "/v1/ingest?tenant=c", {"records": rows[:20]})
        errors: list = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                status, snap, _ = _call(base, "GET", "/v1/snapshot?tenant=c")
                if status != 200:
                    errors.append(("snapshot", status, snap))
                    return
                # A snapshot is internally consistent: its epoch is served
                # from the shelf, so a pinned read of it must succeed or
                # the epoch must have been evicted (404) — never a 500.
                status, pinned, _ = _call(
                    base, "GET", f"/v1/snapshot?tenant=c&epoch={snap['epoch']}"
                )
                if status not in (200, 404):
                    errors.append(("pinned", status, pinned))
                    return
                if status == 200 and pinned["n_attacks"] != snap["n_attacks"]:
                    errors.append(("torn", snap, pinned))
                    return

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for t in readers:
            t.start()
        for lo in range(20, 120, 10):
            status, _, _ = _call(
                base, "POST", "/v1/ingest?tenant=c", {"records": rows[lo:lo + 10]}
            )
            assert status == 200
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert not errors, errors[:3]


class TestParity:
    def test_served_battery_matches_local_run_all(self, server, rows, tiny_ds):
        """GET /v1/experiments is byte-identical to a local api.run_all."""
        base = server.url
        records = list(tiny_ds.iter_attacks())
        _call(base, "POST", "/v1/ingest?tenant=p", {"records": rows[:100]})
        _call(base, "POST", "/v1/ingest?tenant=p", {"records": rows[100:]})
        status, served, _ = _call(base, "GET", "/v1/experiments?tenant=p")
        assert status == 200

        stream = api.stream()
        stream.append_batch(records[:100])
        stream.append_batch(records[100:])
        local = [
            (r.experiment_id, r.render()) for r in api.run_all(stream.context())
        ]
        assert [(e["id"], e["render"]) for e in served["experiments"]] == local

    def test_render_cache_is_stable_across_reads(self, server, rows):
        base = server.url
        _call(base, "POST", "/v1/ingest?tenant=p2", {"records": rows[:30]})
        _, first, _ = _call(base, "GET", "/v1/experiments?tenant=p2")
        _, second, _ = _call(base, "GET", "/v1/experiments?tenant=p2")
        assert first == second


class TestLifecycle:
    def test_context_manager_binds_and_stops(self):
        with AnalysisServer(port=0) as srv:
            assert srv.port > 0
            assert srv.url.startswith("http://127.0.0.1:")
            status, _, _ = _call(srv.url, "GET", "/v1/healthz")
            assert status == 200
        # After stop the port no longer accepts connections.
        with pytest.raises(OSError):
            urllib.request.urlopen(srv.url + "/v1/healthz", timeout=2)

    def test_facade_serve_returns_started_server(self):
        server = api.serve(port=0, queue_size=8)
        try:
            assert server.port > 0
            status, _, _ = _call(server.url, "GET", "/v1/healthz")
            assert status == 200
        finally:
            server.stop()

    def test_bad_tenant_name_400(self, server, rows):
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=no/slash", {"records": rows[:1]}
        )
        assert (status, body["error"]) == (400, "FormatError")
