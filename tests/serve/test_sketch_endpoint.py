"""/v1/sketch and the per-tenant memory ceiling, over a real socket."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import AnalysisServer
from repro.serve.codec import record_to_json


def _call(base: str, method: str, path: str, payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


@pytest.fixture(scope="module")
def rows(tiny_ds):
    return [record_to_json(r) for r in tiny_ds.iter_attacks()]


@pytest.fixture()
def server():
    with AnalysisServer(port=0, queue_size=4, keep_epochs=4) as srv:
        yield srv


class TestSketchEndpoint:
    def test_sketch_after_ingest(self, server, rows):
        status, body, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:50]}
        )
        assert status == 200
        status, sketch, _ = _call(server.url, "GET", "/v1/sketch?tenant=t")
        assert status == 200
        assert sketch["tenant"] == "t"
        assert sketch["epoch"] == body["epoch"]
        assert sketch["n_records"] == 50
        assert sketch["estimate"]["n_records"] == 50
        assert set(sketch["contract"]) == {"cms", "hll", "kll"}
        assert 0 < sketch["sketch_bytes"] <= sketch["resident_bytes"]

    def test_epoch_pinning(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[:20]})
        _call(server.url, "POST", "/v1/ingest?tenant=t", {"records": rows[20:50]})
        status, pinned, _ = _call(server.url, "GET", "/v1/sketch?tenant=t&epoch=1")
        assert status == 200
        assert pinned["epoch"] == 1
        assert pinned["n_records"] == 20
        status, latest, _ = _call(server.url, "GET", "/v1/sketch?tenant=t")
        assert latest["epoch"] == 2
        assert latest["n_records"] == 50

    def test_unknown_tenant_404(self, server):
        status, body, _ = _call(server.url, "GET", "/v1/sketch?tenant=nobody")
        assert (status, body["error"]) == (404, "NotFoundError")

    def test_tenant_before_publish_409(self, server):
        server.tenants.get_or_create("empty")
        status, body, _ = _call(server.url, "GET", "/v1/sketch?tenant=empty")
        assert (status, body["error"]) == (409, "ConflictError")

    def test_evicted_epoch_404(self, server, rows):
        for i in range(6):  # keep_epochs=4 -> epoch 1 falls off
            _call(
                server.url,
                "POST",
                "/v1/ingest?tenant=t",
                {"records": rows[i * 5 : i * 5 + 5]},
            )
        status, body, _ = _call(server.url, "GET", "/v1/sketch?tenant=t&epoch=1")
        assert (status, body["error"]) == (404, "NotFoundError")
        assert "not on the snapshot shelf" in body["detail"]

    def test_post_not_allowed(self, server):
        status, _, _ = _call(server.url, "POST", "/v1/sketch?tenant=t", {})
        assert status == 405

    def test_tenant_isolation(self, server, rows):
        _call(server.url, "POST", "/v1/ingest?tenant=a", {"records": rows[:10]})
        _call(server.url, "POST", "/v1/ingest?tenant=b", {"records": rows[:30]})
        _, a, _ = _call(server.url, "GET", "/v1/sketch?tenant=a")
        _, b, _ = _call(server.url, "GET", "/v1/sketch?tenant=b")
        assert a["n_records"] == 10
        assert b["n_records"] == 30


class TestMemoryCeiling:
    def test_ingest_429_past_ceiling(self, rows):
        # A fresh sketch-enabled tenant sits around 340 KiB resident;
        # a 1 MiB ceiling trips after a bounded number of batches.
        with AnalysisServer(port=0, max_tenant_bytes=1 << 20) as srv:
            code = headers = None
            for _ in range(2_000):
                status, body, hdrs = _call(
                    srv.url, "POST", "/v1/ingest?tenant=t", {"records": rows}
                )
                if status != 200:
                    code, headers, err = status, hdrs, body
                    break
            assert code == 429
            assert "Retry-After" in headers
            assert err["error"] == "BackpressureError"
            assert "memory ceiling" in err["detail"]
            assert "/v1/sketch" in err["detail"]
            # The sketch endpoint still answers past the ceiling.
            status, sketch, _ = _call(srv.url, "GET", "/v1/sketch?tenant=t")
            assert status == 200
            assert sketch["n_records"] > 0

    def test_no_ceiling_by_default(self, server, rows):
        status, _, _ = _call(
            server.url, "POST", "/v1/ingest?tenant=t", {"records": rows}
        )
        assert status == 200
