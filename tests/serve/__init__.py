"""Tests for the ``repro.serve`` multi-tenant analysis service."""
