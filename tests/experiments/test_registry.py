"""Tests running every table/figure experiment end-to-end."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import ALL_EXPERIMENTS, get_experiment, run_all


class TestRegistry:
    def test_all_18_experiments_registered(self):
        # Tables II-VI (5, Table I is structural) + Figs 1-18 grouped.
        assert len(ALL_EXPERIMENTS) == 18
        ids = [e.id for e in ALL_EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        exp = get_experiment("table4_prediction")
        assert exp.section.startswith("IV-A")
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_every_experiment_runs_on_small(self, small_ds):
        results = run_all(small_ds)
        assert len(results) == len(ALL_EXPERIMENTS)
        for result in results:
            assert isinstance(result, ExperimentResult)
            assert result.rows, f"{result.experiment_id} produced no rows"
            rendered = result.render()
            assert result.experiment_id in rendered

    @pytest.mark.parametrize("exp_id", [
        "table2_protocols", "table3_summary", "fig2_daily", "fig7_durations",
    ])
    def test_key_experiments_have_paper_columns(self, small_ds, exp_id):
        result = get_experiment(exp_id).run(small_ds)
        assert any(row.paper is not None for row in result.rows)


class TestExactRows:
    def test_table2_exact_at_any_scale(self, small_ds, tiny_config):
        """Protocol counts are pinned by construction at every scale."""
        result = get_experiment("table2_protocols").run(small_ds)
        for row in result.rows:
            if row.label.startswith("HTTP/dirtjumper"):
                # scaled: 34620 * 0.02
                assert row.measured == str(34620 // 50)

    def test_fig5_aldibot_spacing(self, small_ds):
        result = get_experiment("fig5_family_cdf").run(small_ds)
        spacing = {
            row.label: row.measured
            for row in result.rows
            if "no intervals under" in row.label
        }
        assert spacing.get("aldibot: no intervals under 60 s", "true") == "true"
