"""Detailed tests for the §II-III experiments (Tables II-III, Figs 1-7)."""

import pytest

from repro.experiments.fig2_daily import EXPERIMENT as FIG2
from repro.experiments.fig3_intervals import EXPERIMENT as FIG3
from repro.experiments.fig4_interval_clusters import EXPERIMENT as FIG4
from repro.experiments.fig5_family_cdf import EXPERIMENT as FIG5
from repro.experiments.fig7_durations import EXPERIMENT as FIG7
from repro.experiments.table2_protocols import EXPERIMENT as TABLE2, PAPER_TABLE2
from repro.experiments.table3_summary import EXPERIMENT as TABLE3


class TestTable2:
    def test_paper_cells_sum_to_50704(self):
        assert sum(PAPER_TABLE2.values()) == 50704

    def test_every_paper_cell_reported(self, small_ds):
        result = TABLE2.run(small_ds)
        labels = {row.label for row in result.rows}
        for (proto, family) in PAPER_TABLE2:
            assert f"{proto.name}/{family}" in labels

    def test_no_extra_cells_at_default_calibration(self, small_ds):
        result = TABLE2.run(small_ds)
        assert not any("(extra)" in row.label for row in result.rows)


class TestTable3:
    def test_scaled_counts_proportional(self, small_ds, tiny_config):
        result = TABLE3.run(small_ds)
        measured = {row.label: int(row.measured) for row in result.rows}
        # small scale is 2%: totals should be ~2% of the paper numbers.
        assert measured["ddos_id"] == pytest.approx(50704 * 0.02, rel=0.25)
        assert measured["attackers / bot_ips"] == pytest.approx(310950 * 0.02, rel=0.25)

    def test_traffic_types_constant(self, small_ds):
        result = TABLE3.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert measured["traffic types"] == "7"


class TestFig2:
    def test_top_family_reported(self, small_ds):
        result = FIG2.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert measured["max-day top family"] in small_ds.families

    def test_activity_coverage(self, small_ds):
        result = FIG2.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        active, total = measured["days with activity"].split("/")
        assert int(active) <= int(total)


class TestFig3:
    def test_pair_counts_reported_when_present(self, small_ds):
        result = FIG3.run(small_ds)
        labels = {row.label for row in result.rows}
        assert "single-family simultaneous events" in labels
        assert "multi-family simultaneous events" in labels


class TestFig4:
    def test_rows_per_active_family(self, small_ds):
        result = FIG4.run(small_ds)
        family_rows = [r for r in result.rows if ":" in r.label]
        # Only families with enough intervals are reported.
        assert 3 <= len(family_rows) <= 10


class TestFig5:
    def test_fraction_pairs_parse(self, small_ds):
        result = FIG5.run(small_ds)
        for row in result.rows:
            if "P(gap=0)" in row.label:
                zero, sub60 = (float(x) for x in row.measured.split(" / "))
                assert 0 <= zero <= sub60 <= 1


class TestFig7:
    def test_band_share_in_unit_interval(self, small_ds):
        result = FIG7.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert 0 <= float(measured["Fig 6 band 100-10000 s share"]) <= 1
