"""Detailed tests for the §V experiments (Table VI, Figs 15-18)."""

from repro.experiments.fig15_intra import EXPERIMENT as FIG15
from repro.experiments.fig16_pair import EXPERIMENT as FIG16
from repro.experiments.fig17_consecutive import EXPERIMENT as FIG17
from repro.experiments.fig18_chains import EXPERIMENT as FIG18
from repro.experiments.table6_collaboration import EXPERIMENT as TABLE6, PAPER_TABLE6


class TestTable6:
    def test_paper_reference_shape(self):
        assert PAPER_TABLE6["dirtjumper"] == (756, 121)
        assert PAPER_TABLE6["pandora"] == (10, 118)
        # Every family whose inter count is nonzero partners Dirtjumper.
        inter_families = {f for f, (_i, n) in PAPER_TABLE6.items() if n > 0}
        assert "dirtjumper" in inter_families

    def test_hub_detected(self, small_ds):
        result = TABLE6.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert measured["intra-family hub"] == "dirtjumper"

    def test_counts_non_negative(self, small_ds):
        result = TABLE6.run(small_ds)
        for row in result.rows:
            if "intra-family" in row.label and ":" in row.label:
                assert int(row.measured) >= 0


class TestFig15:
    def test_mean_botnets_at_least_two(self, small_ds):
        result = FIG15.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        if int(measured["dirtjumper intra-family events"]) > 0:
            assert float(measured["mean botnets per collaboration"]) >= 2.0


class TestFig16:
    def test_pandora_outlasts_dirtjumper(self, small_ds):
        result = FIG16.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        if int(measured["collaboration events"]) > 0:
            dj = float(measured["dirtjumper mean duration (s)"])
            pa = float(measured["pandora mean duration (s)"])
            assert pa > dj

    def test_targets_bounded_by_events(self, small_ds):
        result = FIG16.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert int(measured["unique targets"]) <= max(
            int(measured["collaboration events"]), 1
        )


class TestFig17:
    def test_cdf_thresholds_ordered(self, small_ds):
        result = FIG17.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        if "gaps <= 10 s" in measured:
            assert float(measured["gaps <= 10 s"]) <= float(measured["gaps <= 30 s"])


class TestFig18:
    def test_longest_chain_reported(self, small_ds):
        result = FIG18.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        if "longest chain length" in measured:
            assert int(measured["longest chain length"]) >= 2
