"""Detailed tests for the §IV experiments (Figs 8-14, Tables IV-V)."""

import pytest

from repro.experiments.fig8_shift import EXPERIMENT as FIG8
from repro.experiments.fig9_geo_cdf import EXPERIMENT as FIG9
from repro.experiments.fig10_11_histograms import EXPERIMENT as FIG10_11
from repro.experiments.fig14_orgs import EXPERIMENT as FIG14
from repro.experiments.table4_prediction import EXPERIMENT as TABLE4, PAPER_TABLE4
from repro.experiments.table5_countries import EXPERIMENT as TABLE5, PAPER_TABLE5


class TestFig8:
    def test_affinity_ratio_large(self, small_ds):
        result = FIG8.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        ratio = measured["existing:new ratio"]
        assert ratio == "inf" or float(ratio) >= 10.0


class TestFig9:
    def test_fractions_bounded(self, small_ds):
        result = FIG9.run(small_ds)
        for row in result.rows:
            if "fraction at ~0" in row.label:
                assert 0.0 <= float(row.measured) <= 1.0

    def test_pandora_more_symmetric_than_optima(self, small_ds):
        result = FIG9.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        pandora = float(measured["pandora: fraction at ~0 km"])
        optima = float(measured["optima: fraction at ~0 km"])
        assert pandora > optima


class TestFig1011:
    def test_blackenergy_dominates_pandora(self, small_ds):
        result = FIG10_11.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        be = float(measured["blackenergy: asymmetric mean (km)"])
        pa = float(measured["pandora: asymmetric mean (km)"])
        assert be > pa


class TestTable4:
    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE4) == {
            "blackenergy", "pandora", "dirtjumper", "optima", "colddeath"
        }

    def test_darkshell_not_predicted(self, small_ds):
        result = TABLE4.run(small_ds)
        assert not any(row.label.startswith("darkshell") for row in result.rows)

    def test_similarities_bounded(self, small_ds):
        result = TABLE4.run(small_ds)
        for row in result.rows:
            if "cosine similarity" in row.label:
                assert -1.0 <= float(row.measured) <= 1.0


class TestTable5:
    def test_paper_reference_counts(self):
        assert PAPER_TABLE5["dirtjumper"][0] == 71
        assert len(PAPER_TABLE5) == 10
        for _n, top in PAPER_TABLE5.values():
            assert len(top) == 5

    def test_overlap_scores_bounded(self, small_ds):
        result = TABLE5.run(small_ds)
        for row in result.rows:
            if "top-5 overlap" in row.label:
                assert 0 <= int(row.measured) <= 5

    @pytest.mark.parametrize("family,countries", [
        # Dirtjumper's US/RU weights are near-equal (9674 vs 8391); at
        # small scale either can sample on top.
        ("dirtjumper", ("US", "RU")),
        ("pandora", ("RU",)),
        ("darkshell", ("CN",)),
    ])
    def test_calibrated_top_countries(self, small_ds, family, countries):
        result = TABLE5.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        assert measured[f"{family}: top country"].startswith(countries)


class TestFig14:
    def test_infrastructure_share_high(self, small_ds):
        result = FIG14.run(small_ds)
        measured = {row.label: row.measured for row in result.rows}
        infra = measured["attacks on hosting/cloud/DC/registrar/backbone"]
        assert float(infra.split("(")[1].rstrip("%)")) > 60
