"""Shared fixtures: small synthetic datasets, generated once per session."""

from __future__ import annotations

import pytest

from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset


@pytest.fixture(scope="session")
def tiny_ds():
    """~250-attack dataset: fast enough for unit-level assertions."""
    return generate_dataset(DatasetConfig.tiny(seed=7))


@pytest.fixture(scope="session")
def small_ds():
    """~1,000-attack dataset: integration-level assertions."""
    return generate_dataset(DatasetConfig.small(seed=7))


@pytest.fixture(scope="session")
def tiny_config():
    return DatasetConfig.tiny(seed=7)
