"""Unit tests for RunManifest collection and serialisation."""

import json

from repro.obs import ObsRegistry, RunManifest, peak_rss_bytes


def _populated_registry():
    reg = ObsRegistry()
    with reg.span("experiments") as battery:
        with reg.span("table2_protocols", parent=battery):
            pass
        with reg.span("fig2_daily", parent=battery):
            pass
    reg.counter("ingest.records").inc(10)
    reg.gauge("experiments.jobs").set(2)
    reg.histogram("context.view.build_seconds", view="durations").observe(0.01)
    return reg


def test_collect_shapes(tiny_ds):
    reg = _populated_registry()
    m = RunManifest.collect(
        reg, seed=7, scale=0.005, config_key="abc123", dataset=tiny_ds,
        argv=["ddos-repro", "profile"],
    )
    assert m.schema_version == 1
    assert m.seed == 7 and m.scale == 0.005 and m.config_key == "abc123"
    assert m.argv == ["ddos-repro", "profile"]
    assert m.dataset_shape["n_attacks"] == tiny_ds.n_attacks
    assert m.dataset_shape["n_bots"] == tiny_ds.bots.n_bots
    assert {e["id"] for e in m.experiments} == {"table2_protocols", "fig2_daily"}
    assert all(e["n_runs"] == 1 for e in m.experiments)
    assert "ingest.records" in m.metrics
    rss = peak_rss_bytes()
    assert m.peak_rss_bytes == rss or (m.peak_rss_bytes is None and rss is None)


def test_collect_without_dataset():
    m = RunManifest.collect(_populated_registry())
    assert m.dataset_shape == {}
    assert m.seed is None and m.config_key is None


def test_json_round_trip(tmp_path):
    m = RunManifest.collect(_populated_registry(), seed=7)
    path = m.write(tmp_path / "sub" / "manifest.json")
    data = json.loads(path.read_text())
    assert data["schema_version"] == 1
    assert data["seed"] == 7
    assert "experiments" in data["stages"]["children"]
    assert data["metrics"]["experiments.jobs"][0]["value"] == 2.0


def test_stage_tree_rehydrates():
    m = RunManifest.collect(_populated_registry())
    tree = m.stage_tree()
    assert tree.find("experiments", "table2_protocols").n_calls == 1
