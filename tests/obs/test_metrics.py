"""Unit tests for the metrics primitives (Counter/Gauge/Histogram/Registry)."""

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_basics():
    reg = MetricsRegistry()
    c = reg.counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("x") is c  # same instrument on re-request


def test_gauge_set_and_inc():
    g = MetricsRegistry().gauge("g")
    g.set(2.5)
    g.inc(0.5)
    assert g.value == 3.0


def test_histogram_bucket_edges():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 10.0, 100.0):
        h.observe(v)
    # value <= edge lands in that bucket; above the last edge overflows.
    assert h.bucket_counts == [2, 2, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(116.5)


def test_histogram_default_buckets():
    h = MetricsRegistry().histogram("h")
    assert h.edges == DEFAULT_BUCKETS


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("h", buckets=(2.0, 1.0))


def test_labels_create_distinct_series():
    reg = MetricsRegistry()
    a = reg.counter("views", kind="a")
    b = reg.counter("views", kind="b")
    assert a is not b
    a.inc(3)
    assert reg.counter("views", kind="a").value == 3
    assert reg.counter("views", kind="b").value == 0


def test_type_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError):
        reg.gauge("m")


def test_snapshot_shape_and_reset():
    reg = MetricsRegistry()
    reg.counter("c", k="v").inc(2)
    reg.gauge("g").set(1.0)
    reg.histogram("h").observe(0.002)
    snap = reg.snapshot()
    assert set(snap) == {"c", "g", "h"}
    assert snap["c"][0] == {"labels": {"k": "v"}, "type": "counter", "value": 2}
    assert snap["g"][0]["type"] == "gauge"
    hseries = snap["h"][0]
    assert hseries["count"] == 1 and len(hseries["counts"]) == len(hseries["edges"]) + 1
    reg.reset()
    assert reg.snapshot() == {}


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("n")

    def bump():
        for _ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 40_000
