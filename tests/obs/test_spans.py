"""Unit tests for the span recorder and stage tree."""

import threading

from repro.obs import SpanRecorder


def test_spans_nest_and_merge():
    rec = SpanRecorder()
    for _ in range(3):
        with rec.span("outer"):
            with rec.span("inner"):
                pass
    outer = rec.tree().find("outer")
    assert outer.n_calls == 3
    assert outer.children["inner"].n_calls == 3
    assert outer.wall_seconds >= outer.children["inner"].wall_seconds


def test_sibling_spans_are_distinct_nodes():
    rec = SpanRecorder()
    with rec.span("run_x"):
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
    node = rec.tree().find("run_x")
    assert sorted(node.children) == ["a", "b"]


def test_explicit_parent_stitches_worker_threads():
    rec = SpanRecorder()
    with rec.span("battery") as battery:

        def work(i):
            with rec.span(f"exp{i}", parent=battery):
                pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    node = rec.tree().find("battery")
    assert sorted(node.children) == ["exp0", "exp1", "exp2", "exp3"]


def test_worker_without_parent_attaches_to_root():
    rec = SpanRecorder()
    done = threading.Event()

    def work():
        with rec.span("orphan"):
            pass
        done.set()

    with rec.span("main_stage"):
        t = threading.Thread(target=work)
        t.start()
        t.join()
    assert done.is_set()
    assert "orphan" in rec.tree().children
    assert "orphan" not in rec.tree().find("main_stage").children


def test_phases_close_each_other():
    rec = SpanRecorder()
    with rec.span("generate"), rec.phases() as phase:
        phase("world")
        phase("rosters")
        phase("victims")
    gen = rec.tree().find("generate")
    assert sorted(gen.children) == ["rosters", "victims", "world"]
    assert all(child.n_calls == 1 for child in gen.children.values())


def test_self_seconds_and_to_dict():
    rec = SpanRecorder()
    with rec.span("outer"):
        with rec.span("inner"):
            pass
    outer = rec.tree().find("outer")
    assert outer.self_seconds() >= 0.0
    data = outer.to_dict()
    assert data["n_calls"] == 1
    assert "inner" in data["children"]


def test_reset_drops_tree():
    rec = SpanRecorder()
    with rec.span("stage"):
        pass
    rec.reset()
    assert rec.tree().children == {}
