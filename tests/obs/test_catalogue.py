"""The metric catalogue in docs/OBSERVABILITY.md is a tested contract.

Exercise every instrumented path, then diff the set of metric names the
run emitted against the names documented in the catalogue table.  A new
metric without a catalogue row — or a documented metric nothing emits —
fails here.
"""

import re
from pathlib import Path

import pytest

import repro.obs as obs

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

#: Catalogue rows look like ``| `metric.name` | type | ...``.
_ROW = re.compile(r"^\| `([a-z][a-z0-9_.]+)` \|", re.MULTILINE)


def _echo(payload, item):
    """Module-level worker for the capped-fan-out probe."""
    return item


def documented_metrics() -> set[str]:
    """Metric names from the catalogue table in docs/OBSERVABILITY.md."""
    text = DOC.read_text()
    section = text.split("## Metric catalogue", 1)[1].split("\n## ", 1)[0]
    return set(_ROW.findall(section))


def test_catalogue_table_parses():
    names = documented_metrics()
    assert len(names) >= 15, f"catalogue table looks broken, parsed only {names}"


def test_documented_metrics_match_emitted(tiny_config, tmp_path, monkeypatch):
    from repro import api
    from repro.io.cache import load_or_generate_context, save_context_views
    from repro.io.jsonlio import append_attacks_jsonl

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    obs.reset()
    try:
        # generation + dataset cache (miss, then hit)
        ds = api.generate(config=tiny_config)
        api.generate(config=tiny_config)

        # view-snapshot cache (miss, save, hit)
        ctx = load_or_generate_context(tiny_config)
        save_context_views(ctx, tiny_config)
        load_or_generate_context(tiny_config)

        # experiment battery: context views + experiment spans
        api.run_all(ctx, jobs=2)

        # sharded map-reduce: store round-trip, per-shard builds, merge
        from repro.io.colstore import save_sharded_npz

        save_sharded_npz(ds, tmp_path / "store", shards=2)
        sctx = api.context(api.load(tmp_path / "store"))
        api.run_all(sctx, jobs=1)

        # re-merge the same store through the disk memo: the second
        # context's whole reduce is a cache hit (shard.merge.reused)
        from repro.io.cache import MergeCache

        cache = MergeCache(tmp_path / "merge-cache")
        api.context(api.load(tmp_path / "store"), merge_cache=cache).merged()
        api.context(api.load(tmp_path / "store"), merge_cache=cache).merged()

        # ingest round-trip
        api.ingest(ds.iter_attacks(), window=ds.window)

        # streaming: in-order appends with a carry and a spill, then an
        # out-of-order batch (the spill must precede it: a late batch
        # marks the spilled prefix dirty)
        records = list(ds.iter_attacks())
        stream = api.stream(window=ds.window)
        stream.append_batch(records[:50])
        stream.context()
        stream.append_batch(records[50:100])
        stream.context()
        stream.spill_shards(tmp_path / "spill-store")
        stream.append_batch(records[:10])

        # watch: tail a real log, in both memory models
        log = tmp_path / "attacks.jsonl"
        append_attacks_jsonl(records[:20], log)
        session = api.watch(log)
        assert session.poll() is not None
        sketch_session = api.watch(log, sketch=True)
        assert sketch_session.poll() is not None

        # sketch layer: updates, memory/error-budget gauges, one merge
        from repro.core.merge import sketch_summaries
        from repro.sketch import summarize_dataset

        sketch_summaries([summarize_dataset(ds), summarize_dataset(ds)])

        # a capped fan-out: more jobs than CPUs on a multi-item map
        import warnings

        from repro.par.pool import parallel_map

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr("os.cpu_count", lambda: 1)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                parallel_map(_echo, [1, 2], jobs=2)

        # serve: one HTTP ingest round-trip (requests, request_seconds,
        # ingest.records, queue_depth, tenants) plus a forced 429 on a
        # paused writer (ingest.rejected)
        import json
        import urllib.error
        import urllib.request

        from repro.serve.codec import record_to_json

        rows = [record_to_json(r) for r in records[:20]]
        with api.serve(port=0, queue_size=1) as server:
            body = json.dumps({"records": rows}).encode()
            req = urllib.request.Request(
                server.url + "/v1/ingest?tenant=cat", data=body, method="POST"
            )
            with urllib.request.urlopen(req, timeout=120) as resp:
                assert resp.status == 200
            tenant = server.tenants.get("cat")
            tenant.pause()
            rejected = 0
            for _ in range(4):
                req = urllib.request.Request(
                    server.url + "/v1/ingest?tenant=cat&wait=0",
                    data=body, method="POST",
                )
                try:
                    urllib.request.urlopen(req, timeout=120).close()
                except urllib.error.HTTPError as err:
                    assert err.code == 429
                    rejected += 1
            assert rejected, "expected at least one 429 on the paused tenant"
            tenant.resume()

        emitted = obs.registry().names()
    finally:
        obs.reset()

    documented = documented_metrics()
    undocumented = emitted - documented
    stale = documented - emitted
    assert not undocumented, f"emitted metrics missing from the catalogue: {sorted(undocumented)}"
    assert not stale, f"catalogue rows nothing emitted: {sorted(stale)}"


@pytest.mark.parametrize("anchor", ["RunManifest JSON schema", "ddos-repro profile"])
def test_doc_sections_present(anchor):
    assert anchor in DOC.read_text()
