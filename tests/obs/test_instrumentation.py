"""Integration: the pipeline layers actually emit into the default registry."""

import pytest

import repro.obs as obs
from repro.core.context import AnalysisContext
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.experiments.registry import ALL_EXPERIMENTS, run_all
from repro.io.ingest import dataset_from_records
from repro.stream.builder import StreamingDataset


@pytest.fixture(autouse=True)
def fresh_registry():
    obs.reset()
    yield
    obs.reset()


def test_generation_emits_phase_spans():
    ds = generate_dataset(DatasetConfig.tiny())
    reg = obs.registry()
    assert reg.counter("generate.attacks").value == ds.n_attacks
    gen = reg.stage_tree().find("generate")
    assert gen is not None and gen.n_calls == 1
    assert set(gen.children) == {
        "world", "rosters", "victims", "pool_plans", "inter",
        "par.shards", "merge", "par.participants", "assemble",
    }
    assert reg.counter("par.tasks", phase="shards").value == len(ds.families)
    assert reg.counter("par.tasks", phase="participants").value >= 1
    assert reg.gauge("par.jobs").value == 1.0  # serial fallback still reports
    # phases are sequential slices of the generate span
    assert sum(c.wall_seconds for c in gen.children.values()) <= gen.wall_seconds * 1.01


def test_context_counts_hits_and_misses(tiny_ds):
    ctx = AnalysisContext(tiny_ds)  # unshared: session fixtures stay clean
    reg = obs.registry()
    ctx.view(("probe",), lambda: 41)
    ctx.view(("probe",), lambda: 41)
    ctx.view(("probe",), lambda: 41)
    assert reg.counter("context.view.miss", view="probe").value == 1
    assert reg.counter("context.view.hit", view="probe").value == 2
    assert reg.histogram("context.view.build_seconds", view="probe").count == 1


def test_run_all_emits_experiment_spans(tiny_ds):
    ctx = AnalysisContext(tiny_ds)
    run_all(ctx, jobs=2)
    reg = obs.registry()
    assert reg.gauge("experiments.jobs").value == 2.0
    assert reg.counter("experiments.completed").value == len(ALL_EXPERIMENTS)
    battery = reg.stage_tree().find("experiments")
    # every experiment span lands under the battery, pool threads included
    assert set(battery.children) >= {e.id for e in ALL_EXPERIMENTS}


def test_ingest_emits_span_and_count(tiny_ds):
    ds = dataset_from_records(tiny_ds.iter_attacks(), window=tiny_ds.window)
    reg = obs.registry()
    assert reg.counter("ingest.records").value == ds.n_attacks
    assert reg.stage_tree().find("ingest").n_calls == 1


def test_cache_counters(tiny_config, tmp_path):
    from repro.io.cache import (
        load_or_generate,
        load_or_generate_context,
        save_context_views,
    )

    reg = obs.registry()
    load_or_generate(tiny_config, tmp_path)
    assert reg.counter("cache.dataset.miss").value == 1
    load_or_generate(tiny_config, tmp_path)
    assert reg.counter("cache.dataset.hit").value == 1

    ctx = load_or_generate_context(tiny_config, tmp_path)
    assert reg.counter("cache.views.miss").value == 1
    ctx.view(("probe",), lambda: 1)
    save_context_views(ctx, tiny_config, tmp_path)
    load_or_generate_context(tiny_config, tmp_path)
    assert reg.counter("cache.views.hit").value == 1


def test_stream_append_and_carry_metrics(tiny_ds):
    records = list(tiny_ds.iter_attacks())
    reg = obs.registry()
    stream = StreamingDataset(window=tiny_ds.window)

    assert stream.append_batch(records[:50]) == 50
    ctx = stream.context()
    ctx.view(("probe",), lambda: 1)  # something for the carry to seed
    assert stream.append_batch(records[50:100]) == 50
    stream.context()

    assert reg.counter("stream.records_appended").value == 100
    assert reg.counter("stream.batches", in_order="true").value == 2
    assert reg.gauge("stream.epoch").value == 2.0
    assert reg.histogram("stream.append_seconds").count == 2
    assert reg.histogram("stream.carry_seconds").count == 1
    carried = reg.counter("stream.views_carried").value
    invalidated = reg.counter("stream.views_invalidated").value
    assert carried + invalidated == ctx.n_views

    # an out-of-order batch takes the merge path
    assert stream.append_batch(records[:10]) == 10
    assert reg.counter("stream.batches", in_order="false").value == 1


def test_watch_metrics(tiny_ds, tmp_path):
    from repro.io.jsonlio import append_attacks_jsonl
    from repro.stream.watch import WatchSession

    log = tmp_path / "attacks.jsonl"
    session = WatchSession(log)
    reg = obs.registry()

    assert session.poll() is None  # no file yet: lag gauge still refreshed
    assert session.lag_seconds == 0.0

    records = list(tiny_ds.iter_attacks())[:20]
    append_attacks_jsonl(records, log)
    rendered = session.poll()
    assert rendered is not None
    assert reg.counter("watch.lines_ingested").value == 20
    assert reg.histogram("watch.render_seconds").count == 1
    assert reg.gauge("watch.lag_seconds").value >= 0.0
    assert session.lag_seconds >= 0.0
