"""Tests for the stable ``repro.api`` facade."""

import numpy as np
import pytest

from repro import api


class TestFacade:
    def test_reexported_from_package_root(self):
        import repro

        assert repro.api is api

    def test_generate_without_cache(self, tiny_config):
        ds = api.generate(config=tiny_config, cache=False)
        assert ds.n_attacks > 0

    def test_generate_uses_cache(self, tiny_config, tmp_path):
        ds1 = api.generate(config=tiny_config, cache_dir=tmp_path)
        ds2 = api.generate(config=tiny_config, cache_dir=tmp_path)
        assert np.array_equal(ds1.start, ds2.start)
        assert any(p.name.startswith("dataset-") for p in tmp_path.iterdir())

    def test_context_is_shared(self, tiny_ds):
        assert api.context(tiny_ds) is api.context(tiny_ds)

    def test_ingest_roundtrip(self, tiny_ds):
        ds = api.ingest(tiny_ds.iter_attacks(), window=tiny_ds.window)
        assert ds.attack_columns_equal is not None
        assert ds.n_attacks == tiny_ds.n_attacks

    def test_stream_builder(self, tiny_ds):
        stream = api.stream(window=tiny_ds.window)
        stream.append_batch(list(tiny_ds.iter_attacks()))
        assert stream.n_attacks == tiny_ds.n_attacks

    def test_run_all_smoke(self, tiny_ds):
        results = list(api.run_all(api.context(tiny_ds)))
        assert len(results) > 0
        assert all(hasattr(r, "render") for r in results)


class TestLoad:
    def test_load_jsonl(self, tiny_ds, tmp_path):
        from repro.io.jsonlio import export_attacks_jsonl

        path = tmp_path / "attacks.jsonl"
        export_attacks_jsonl(tiny_ds, path)
        ds = api.load(path)
        assert ds.n_attacks == tiny_ds.n_attacks

    def test_load_csv(self, tiny_ds, tmp_path):
        from repro.io.csvio import export_attacks_csv

        path = tmp_path / "attacks.csv"
        export_attacks_csv(tiny_ds, path)
        ds = api.load(path)
        assert ds.n_attacks == tiny_ds.n_attacks

    def test_load_pickle(self, tiny_ds, tmp_path):
        from repro.io.cache import save_dataset

        path = tmp_path / "ds.pkl.gz"
        save_dataset(tiny_ds, path)
        ds = api.load(path)
        assert ds.n_attacks == tiny_ds.n_attacks
        assert ds.bots.n_bots == tiny_ds.bots.n_bots  # full round-trip

    def test_load_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="cannot infer format"):
            api.load(tmp_path / "data.xml")

    def test_watch_factory(self, tmp_path):
        session = api.watch(tmp_path / "log.jsonl")
        assert session.poll() is None


class TestShardedDispatch:
    def test_load_with_shards_partitions(self, tiny_ds, tmp_path):
        from repro.io.colstore import ShardedDatasetStore, save_dataset_npz

        path = save_dataset_npz(tiny_ds, tmp_path / "flat.npz")
        store = api.load(path, shards=3)
        assert isinstance(store, ShardedDatasetStore)
        assert store.n_shards == 3

    def test_load_sharded_store_directory(self, tiny_ds, tmp_path):
        from repro.io.colstore import ShardedDatasetStore, save_sharded_npz

        path = save_sharded_npz(tiny_ds, tmp_path / "store", shards=2)
        store = api.load(path)
        assert isinstance(store, ShardedDatasetStore)
        assert store.n_attacks == tiny_ds.n_attacks

    def test_load_store_with_shards_rejected(self, tiny_ds, tmp_path):
        from repro.io.colstore import save_sharded_npz

        path = save_sharded_npz(tiny_ds, tmp_path / "store", shards=2)
        with pytest.raises(ValueError, match="already a sharded store"):
            api.load(path, shards=4)

    def test_context_wraps_store(self, tiny_ds, tmp_path):
        from repro.core.context import ShardedAnalysisContext
        from repro.io.colstore import ShardedDatasetStore

        store = ShardedDatasetStore.partition(tiny_ds, shards=2)
        sctx = api.context(store)
        assert isinstance(sctx, ShardedAnalysisContext)
        assert api.context(sctx) is sctx

    def test_run_all_map_reduce_smoke(self, tiny_ds):
        from repro.io.colstore import ShardedDatasetStore

        store = ShardedDatasetStore.partition(tiny_ds, shards=2)
        sharded = [r.render() for r in api.run_all(api.context(store), jobs=1)]
        flat = [r.render() for r in api.run_all(api.context(tiny_ds), jobs=1)]
        assert sharded == flat


class TestOpen:
    """``api.open`` unifies the load / stream / generate dispatch."""

    def test_open_nothing_starts_a_stream(self):
        from repro.stream import StreamingDataset

        stream = api.open()
        assert isinstance(stream, StreamingDataset)
        assert stream.n_attacks == 0

    def test_open_config_generates(self, tiny_config, tiny_ds):
        ds = api.open(tiny_config)
        assert ds.n_attacks == tiny_ds.n_attacks

    def test_open_path_loads(self, tiny_ds, tmp_path):
        from repro.io.jsonlio import export_attacks_jsonl

        path = tmp_path / "attacks.jsonl"
        export_attacks_jsonl(tiny_ds, path)
        assert api.open(path).n_attacks == tiny_ds.n_attacks

    def test_open_dataset_is_identity(self, tiny_ds):
        assert api.open(tiny_ds) is tiny_ds

    def test_open_dataset_with_shards_partitions(self, tiny_ds):
        from repro.io.colstore import ShardedDatasetStore

        store = api.open(tiny_ds, shards=2)
        assert isinstance(store, ShardedDatasetStore)
        assert store.n_shards == 2

    def test_open_store_passthrough_and_reshard_conflict(self, tiny_ds, tmp_path):
        from repro.errors import ShardLayoutError
        from repro.io.colstore import save_sharded_npz

        store = api.load(save_sharded_npz(tiny_ds, tmp_path / "store", shards=2))
        assert api.open(store) is store
        with pytest.raises(ShardLayoutError):
            api.open(store, shards=4)

    def test_open_nothing_with_shards_rejected(self):
        from repro.errors import ShardLayoutError

        with pytest.raises(ShardLayoutError):
            api.open(shards=2)

    def test_open_garbage_rejected(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            api.open(object())


class TestSurface:
    """The documented facade surface: version, alias, doc coverage."""

    def test_api_version_is_a_string(self):
        major, minor = api.__version__.split(".")
        assert int(major) >= 2

    def test_loaded_data_alias_members(self):
        from typing import get_args

        from repro.io.colstore import ShardedDatasetStore

        assert set(get_args(api.LoadedData)) == {
            api.AttackDataset,
            ShardedDatasetStore,
        }

    def test_errors_reachable_from_facade(self):
        from repro import errors

        assert api.ReproError is errors.ReproError
        assert api.FormatError is errors.FormatError
        assert api.ShardLayoutError is errors.ShardLayoutError
        assert api.IngestError is errors.IngestError

    def test_keyword_only_signatures(self):
        """Everything after the first positional argument is keyword-only."""
        import inspect

        for name in ("generate", "open", "load", "ingest", "stream", "watch",
                     "run_all", "serve"):
            func = getattr(api, name)
            params = list(inspect.signature(func).parameters.values())
            for param in params[1:]:
                assert param.kind in (
                    inspect.Parameter.KEYWORD_ONLY,
                    inspect.Parameter.VAR_KEYWORD,
                ), f"api.{name} parameter {param.name!r} is not keyword-only"

    def test_api_md_documents_every_export(self):
        from pathlib import Path

        doc = Path(__file__).resolve().parent.parent / "docs" / "API.md"
        text = doc.read_text()
        for name in api.__all__:
            assert f"api.{name}" in text, (
                f"docs/API.md is missing the facade export {name!r}"
            )
