"""Tests for the detection-window analysis."""

import pytest

from repro.defense.detection import evaluate_detection_window, sweep_detection_windows


class TestDetectionWindow:
    def test_instant_detection_catches_everything(self, small_ds):
        outcome = evaluate_detection_window(small_ds, 0.0)
        assert outcome.caught_fraction == 1.0
        assert outcome.exposure_mitigated == pytest.approx(1.0)

    def test_monotone_in_window(self, small_ds):
        outcomes = sweep_detection_windows(small_ds)
        caught = [o.caught_fraction for o in outcomes]
        mitigated = [o.exposure_mitigated for o in outcomes]
        assert caught == sorted(caught, reverse=True)
        assert mitigated == sorted(mitigated, reverse=True)

    def test_four_hour_knee(self, small_ds):
        fast = evaluate_detection_window(small_ds, 300.0)
        slow = evaluate_detection_window(small_ds, 4 * 3600.0)
        # §III-C: a 4-hour detector misses the large majority of attacks.
        assert fast.caught_fraction > 0.7
        assert slow.caught_fraction < 0.35

    def test_family_filter(self, small_ds):
        outcome = evaluate_detection_window(small_ds, 600.0, family="dirtjumper")
        assert outcome.n_attacks == small_ds.attacks_of("dirtjumper").size

    def test_negative_window_rejected(self, small_ds):
        with pytest.raises(ValueError):
            evaluate_detection_window(small_ds, -1.0)
