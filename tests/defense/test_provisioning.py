"""Tests for prediction-driven provisioning."""

import pytest

from repro.defense.provisioning import backtest_provisioning


class TestProvisioning:
    def test_backtest_produces_predictions(self, small_ds):
        result = backtest_provisioning(small_ds)
        assert result.n_predictions > 0
        assert 0.0 <= result.hit_rate <= 1.0
        assert result.mean_abs_error >= 0.0

    def test_wider_windows_hit_more(self, small_ds):
        narrow = backtest_provisioning(small_ds, window_factor=0.5)
        wide = backtest_provisioning(small_ds, window_factor=3.0)
        assert wide.hits >= narrow.hits

    def test_bad_fraction_rejected(self, small_ds):
        with pytest.raises(ValueError):
            backtest_provisioning(small_ds, train_fraction=0.99)

    def test_min_history_reduces_predictions(self, small_ds):
        low = backtest_provisioning(small_ds, min_history=3)
        high = backtest_provisioning(small_ds, min_history=20)
        assert high.n_predictions <= low.n_predictions
