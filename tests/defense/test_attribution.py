"""Tests for attribution-noise sensitivity."""

from repro.defense.attribution import labeling_sensitivity


class TestLabelingSensitivity:
    def test_zero_noise_matches_clean_split(self, small_ds):
        from repro.core.collaboration import detect_collaborations

        impacts = labeling_sensitivity(small_ds, error_rates=(0.0,))
        events = detect_collaborations(small_ds)
        clean_inter = sum(1 for e in events if e.is_inter_family)
        assert impacts[0].inter_events == clean_inter
        assert impacts[0].intra_events == len(events) - clean_inter

    def test_noise_inflates_inter_fraction(self, small_ds):
        impacts = labeling_sensitivity(small_ds, error_rates=(0.0, 0.25))
        assert impacts[1].inter_fraction >= impacts[0].inter_fraction

    def test_total_events_invariant(self, small_ds):
        impacts = labeling_sensitivity(small_ds, error_rates=(0.0, 0.05, 0.25))
        totals = {i.intra_events + i.inter_events for i in impacts}
        assert len(totals) == 1  # noise reclassifies, never invents events
