"""Tests for blacklist defenses."""

import pytest

from repro.defense.blacklist import CountryBlacklist, IPBlacklist


@pytest.fixture(scope="module")
def cutoff(small_ds):
    return small_ds.window.start + 0.5 * small_ds.window.duration


class TestCountryBlacklist:
    def test_high_coverage_from_affinity(self, small_ds, cutoff):
        bl = CountryBlacklist().fit(small_ds, cutoff)
        result = bl.evaluate(small_ds, cutoff)
        # §IV-A: sources are sticky, so history-derived country lists
        # cover nearly all future participations.
        assert result.coverage > 0.9
        assert result.future_attacks > 0
        assert result.n_entries == len(bl.countries)

    def test_family_scoped(self, small_ds, cutoff):
        bl = CountryBlacklist().fit(small_ds, cutoff, family="dirtjumper")
        result = bl.evaluate(small_ds, cutoff, family="dirtjumper")
        assert result.coverage > 0.85

    def test_unfitted_raises(self, small_ds, cutoff):
        with pytest.raises(RuntimeError):
            CountryBlacklist().evaluate(small_ds, cutoff)

    def test_blocks_mask_shape(self, small_ds, cutoff):
        bl = CountryBlacklist().fit(small_ds, cutoff)
        bots = small_ds.participants_of(0)
        mask = bl.blocks(small_ds, bots)
        assert mask.shape == bots.shape
        assert mask.dtype == bool


class TestIPBlacklist:
    def test_ip_coverage_below_country(self, small_ds, cutoff):
        ip_bl = IPBlacklist().fit(small_ds, cutoff)
        cc_bl = CountryBlacklist().fit(small_ds, cutoff)
        ip_res = ip_bl.evaluate(small_ds, cutoff)
        cc_res = cc_bl.evaluate(small_ds, cutoff)
        # Exact-IP lists are strictly narrower than country lists.
        assert ip_res.blocked_participations <= cc_res.blocked_participations
        assert ip_res.coverage > 0.0  # bots are reused across attacks

    def test_entries_counted(self, small_ds, cutoff):
        bl = IPBlacklist().fit(small_ds, cutoff)
        assert bl.n_entries > 0

    def test_unfitted_raises(self, small_ds, cutoff):
        with pytest.raises(RuntimeError):
            IPBlacklist().evaluate(small_ds, cutoff)

    def test_empty_history(self, small_ds):
        bl = IPBlacklist().fit(small_ds, small_ds.window.start)
        result = bl.evaluate(small_ds, small_ds.window.start)
        assert result.blocked_participations == 0
        assert result.coverage == 0.0
