"""Tests for the prediction analyses (Table IV, Figs 12-13)."""

import numpy as np
import pytest

from repro.core.prediction import (
    MIN_SERIES_POINTS,
    predict_family_dispersion,
    predict_next_attack_time,
)


class TestDispersionForecast:
    def test_forecast_structure(self, small_ds):
        forecast = predict_family_dispersion(small_ds, "dirtjumper")
        assert forecast.prediction.size == forecast.truth.size
        assert forecast.errors.size == forecast.truth.size
        assert np.all(forecast.prediction >= 0)
        assert forecast.comparison.n_points == forecast.truth.size

    def test_similarity_reasonable(self, small_ds):
        forecast = predict_family_dispersion(small_ds, "dirtjumper")
        # The staged series is persistent; even at small scale the
        # forecast should be strongly aligned with the truth.
        assert forecast.comparison.similarity > 0.6

    def test_too_few_points_raises(self, small_ds):
        with pytest.raises(ValueError):
            predict_family_dispersion(small_ds, "aldibot")

    def test_bad_train_fraction(self, small_ds):
        with pytest.raises(ValueError):
            predict_family_dispersion(small_ds, "dirtjumper", train_fraction=0.95)

    def test_auto_order(self, small_ds):
        forecast = predict_family_dispersion(small_ds, "dirtjumper", order=None)
        assert len(forecast.order) == 3

    def test_full_series_mode(self, small_ds):
        forecast = predict_family_dispersion(
            small_ds, "dirtjumper", asymmetric_only=False
        )
        assert forecast.truth.size >= MIN_SERIES_POINTS // 2


class TestNextAttack:
    def test_prediction_structure(self, small_ds):
        # Find a target attacked often.
        targets, counts = np.unique(small_ds.target_idx, return_counts=True)
        target = int(targets[np.argmax(counts)])
        pred = predict_next_attack_time(small_ds, target)
        assert pred.n_attacks == counts.max()
        assert pred.predicted_next_at >= pred.last_attack_at
        assert pred.predicted_interval >= 0
        assert pred.interval_mean > 0

    def test_rare_target_raises(self, small_ds):
        targets, counts = np.unique(small_ds.target_idx, return_counts=True)
        rare = int(targets[np.argmin(counts)])
        if counts.min() < 5:
            with pytest.raises(ValueError):
                predict_next_attack_time(small_ds, rare)
