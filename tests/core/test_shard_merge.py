"""Merge-algebra tests: sharded map-reduce equals the unsharded build.

The tentpole contract is *bitwise*: every derived view seeded by
:meth:`ShardedAnalysisContext.merged` must be array-equal to the one the
unsharded :class:`AnalysisContext` builds from scratch, for any shard
count.  These tests pin that across K ∈ {1, 2, 5} partitions, check the
commutative combinators are merge-order invariant, and hand-craft
collaboration/chain cases that straddle a shard boundary (the stitched
rescan path).  The full-scale byte-identity sweep (marked ``slow``)
only runs when ``REPRO_BENCH_SCALE`` names a scale, as in CI.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.core import merge
from repro.core.context import AnalysisContext, ShardedAnalysisContext
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.experiments.registry import run_all
from repro.io.cache import MergeCache
from repro.io.colstore import ShardedDatasetStore, append_shard
from repro.io.ingest import dataset_from_records
from repro.simulation.clock import ObservationWindow

from .test_kernel_parity import _record


def _assert_view_equal(label: str, got, want) -> None:
    """Recursive bitwise equality over the view value shapes we merge."""
    assert type(got) is type(want), f"{label}: {type(got)} != {type(want)}"
    if isinstance(got, np.ndarray):
        np.testing.assert_array_equal(got, want, err_msg=label)
        assert got.dtype == want.dtype, label
    elif isinstance(got, dict):
        assert list(got) == list(want), label  # key *order* matters too
        for key in got:
            _assert_view_equal(f"{label}[{key!r}]", got[key], want[key])
    elif isinstance(got, (list, tuple)):
        assert len(got) == len(want), label
        for i, (g, w) in enumerate(zip(got, want)):
            _assert_view_equal(f"{label}[{i}]", g, w)
    elif dataclasses.is_dataclass(got):
        for field in dataclasses.fields(got):
            _assert_view_equal(
                f"{label}.{field.name}",
                getattr(got, field.name),
                getattr(want, field.name),
            )
    else:
        assert got == want, f"{label}: {got!r} != {want!r}"


def _collect_views(ctx: AnalysisContext, families: list[str]) -> dict:
    """Every mergeable view, keyed by a readable label."""
    out = {
        "attack_intervals": ctx.attack_intervals(),
        "durations": ctx.durations(),
        "target_country_idx": ctx.target_country_idx(),
        "target_org_idx": ctx.target_org_idx(),
        "target_country_counts": ctx.target_country_counts(),
        "target_org_counts": ctx.target_org_counts(),
        "victim_org_type_counts": ctx.victim_org_type_counts(),
        "protocol_breakdown": ctx.protocol_breakdown(),
        "protocol_popularity": ctx.protocol_popularity(),
        "daily_distribution": ctx.daily_distribution(),
        "collaborations": ctx.collaborations(),
        "chains": ctx.chains(),
    }
    for fam in families:
        out[f"{fam}.attacks"] = ctx.family_attacks(fam)
        out[f"{fam}.starts"] = ctx.family_starts(fam)
        out[f"{fam}.intervals"] = ctx.family_intervals(fam)
        out[f"{fam}.durations"] = ctx.durations(fam)
        out[f"{fam}.participants"] = ctx.family_participants(fam)
        out[f"{fam}.attack_dispersions"] = ctx.attack_dispersions(fam)
        out[f"{fam}.snapshot_dispersions"] = ctx.snapshot_dispersions(fam)
        out[f"{fam}.target_country_counts"] = ctx.family_target_country_counts(fam)
        out[f"{fam}.daily_distribution"] = ctx.daily_distribution(fam)
        out[f"{fam}.weekly_shift"] = ctx.weekly_shift(fam)
    return out


class TestMergedParity:
    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_every_seeded_view_matches_unsharded(self, small_ds, k):
        store = ShardedDatasetStore.partition(small_ds, shards=k)
        sctx = ShardedAnalysisContext(store)
        sctx.build(jobs=1)
        merged = sctx.merged()
        fresh = AnalysisContext(small_ds)
        assert merged.dataset.attack_columns_equal(small_ds)

        families = [f for f in small_ds.active_families if fresh.family_attacks(f).size]
        got = _collect_views(merged, families)
        want = _collect_views(fresh, families)
        for label in want:
            _assert_view_equal(label, got[label], want[label])

    def test_merged_views_are_seeded_not_rebuilt(self, small_ds):
        """merged() must seed the scan results, not leave them lazy."""
        sctx = ShardedAnalysisContext(ShardedDatasetStore.partition(small_ds, shards=3))
        sctx.build(jobs=1)
        merged = sctx.merged()
        keys = set(merged.view_keys())
        assert ("collaborations",) in keys
        assert ("chains",) in keys
        assert ("attack_intervals",) in keys

    def test_battery_renders_identically(self, small_ds):
        sctx = ShardedAnalysisContext(ShardedDatasetStore.partition(small_ds, shards=4))
        sctx.build(jobs=1)
        sharded = [r.render() for r in run_all(sctx.merged(), jobs=1)]
        flat = [r.render() for r in run_all(AnalysisContext(small_ds), jobs=1)]
        assert sharded == flat


class TestMergeOrderInvariance:
    """The commutative combinators give the same answer in any part order."""

    def _parts(self, small_ds, k=4):
        store = ShardedDatasetStore.partition(small_ds, shards=k)
        return [store.load_shard(i) for i in range(store.n_shards)]

    def test_counts_invariant(self, small_ds):
        parts = [
            np.unique(ds.target_idx, return_counts=True)
            for ds in self._parts(small_ds)
        ]
        base = merge.merge_counts(parts)
        for order in ([3, 1, 0, 2], [2, 3, 0, 1]):
            got = merge.merge_counts([parts[i] for i in order])
            np.testing.assert_array_equal(got[0], base[0])
            np.testing.assert_array_equal(got[1], base[1])

    def test_protocol_tables_invariant(self, small_ds):
        shards = self._parts(small_ds)
        ctxs = [AnalysisContext(ds) for ds in shards]
        breakdown = [c.protocol_breakdown() for c in ctxs]
        popularity = [c.protocol_popularity() for c in ctxs]
        for order in ([3, 1, 0, 2], [1, 0, 3, 2]):
            assert merge.merge_protocol_breakdown(
                [breakdown[i] for i in order]
            ) == merge.merge_protocol_breakdown(breakdown)
            assert merge.merge_protocol_popularity(
                [popularity[i] for i in order]
            ) == merge.merge_protocol_popularity(popularity)

    def test_weekly_pairs_invariant(self, small_ds):
        shards = self._parts(small_ds)
        ctxs = [AnalysisContext(ds) for ds in shards]
        fam = small_ds.active_families[0]
        parts = [c.weekly_shift_pairs(fam) for c in ctxs]
        base = merge.merge_weekly_pairs(parts)
        got = merge.merge_weekly_pairs([parts[i] for i in (2, 0, 3, 1)])
        for g, b in zip(got, base):
            np.testing.assert_array_equal(g, b)


def _boundary_dataset(records):
    """Two-day dataset; shard boundary (2 shards) falls at t = 86400."""
    return dataset_from_records(records, ObservationWindow(start=0, end=2 * 86400))


class TestBoundaryStitching:
    def test_collaboration_straddles_boundary(self):
        # Two botnets hit one target 50 s apart across t=86400: a
        # collaboration no single shard can see.
        ds = _boundary_dataset(
            [
                _record(0, botnet=1, family="alpha", target=1, start=86_350.0, duration=600.0),
                _record(1, botnet=2, family="alpha", target=1, start=86_410.0, duration=600.0),
                _record(2, botnet=3, family="beta", target=2, start=1_000.0, duration=300.0),
                _record(3, botnet=4, family="beta", target=3, start=100_000.0, duration=300.0),
            ]
        )
        store = ShardedDatasetStore.partition(ds, shards=2)
        assert [int(c) for c in store._counts] == [2, 2]
        sctx = ShardedAnalysisContext(store)
        sctx.build(jobs=1)
        merged = sctx.merged()
        flat = AnalysisContext(ds)
        assert merged.collaborations() == flat.collaborations()
        assert len(merged.collaborations()) == 1
        assert merged.collaborations()[0].attack_indices == (1, 2)

    def test_chain_straddles_boundary(self):
        # Consecutive same-target attacks handed off across the cut.
        ds = _boundary_dataset(
            [
                _record(0, botnet=1, family="alpha", target=1, start=86_000.0, duration=300.0),
                _record(1, botnet=2, family="alpha", target=1, start=86_350.0, duration=300.0),
                _record(2, botnet=3, family="alpha", target=1, start=86_700.0, duration=300.0),
                _record(3, botnet=4, family="beta", target=2, start=120_000.0, duration=300.0),
            ]
        )
        store = ShardedDatasetStore.partition(ds, shards=2)
        assert [int(c) for c in store._counts] == [2, 2]
        sctx = ShardedAnalysisContext(store)
        sctx.build(jobs=1)
        merged = sctx.merged()
        flat = AnalysisContext(ds)
        assert merged.chains() == flat.chains()
        assert len(merged.chains()) == 1
        assert merged.chains()[0].attack_indices == (0, 1, 2)

    def test_boundary_suspects_flag_handoff_targets(self):
        ds = _boundary_dataset(
            [
                _record(0, botnet=1, family="alpha", target=1, start=86_350.0, duration=600.0),
                _record(1, botnet=2, family="alpha", target=1, start=86_410.0, duration=600.0),
                _record(2, botnet=3, family="beta", target=2, start=1_000.0, duration=300.0),
                _record(3, botnet=4, family="beta", target=3, start=100_000.0, duration=300.0),
            ]
        )
        store = ShardedDatasetStore.partition(ds, shards=2)
        shards = [store.load_shard(i) for i in range(2)]
        suspect = merge.find_boundary_suspects(shards, ds.victims.n_targets)
        # rows sort by start: 0 = the early beta, 1-2 = the straddling
        # alpha pair, 3 = the late beta.
        assert suspect[ds.target_idx[1]]  # the straddling target
        assert not suspect[ds.target_idx[0]]  # one-shard-only targets
        assert not suspect[ds.target_idx[3]]

    def test_intervals_gain_exact_boundary_gap(self):
        ds = _boundary_dataset(
            [
                _record(0, botnet=1, family="alpha", target=1, start=10.0, duration=60.0),
                _record(1, botnet=2, family="alpha", target=1, start=500.0, duration=60.0),
                _record(2, botnet=3, family="alpha", target=1, start=90_000.0, duration=60.0),
            ]
        )
        store = ShardedDatasetStore.partition(ds, shards=2)
        shards = [store.load_shard(i) for i in range(2)]
        got = merge.merge_intervals(
            [s.start for s in shards], [np.diff(s.start) for s in shards]
        )
        np.testing.assert_array_equal(got, np.diff(ds.start))


def _append_store(path, small_ds, k):
    """A disk store holding the first ``k`` of ``k + 1`` time slices.

    Returns the store path and the held-back tail slice, so a test can
    merge, append the tail, and re-merge incrementally.
    """
    slices = ShardedDatasetStore.partition(small_ds, shards=k + 1)
    parts = [slices.load_shard(i) for i in range(k + 1)]
    for part in parts[:k]:
        append_shard(path, part)
    return parts[k]


class TestIncrementalRemerge:
    """append_shard + refresh + merged() re-merges only the spine —
    and the result is byte-identical to a from-scratch build."""

    @pytest.mark.parametrize("k", [2, 5, 8])
    def test_append_then_remerge_equals_from_scratch(self, small_ds, k, tmp_path):
        tail = _append_store(tmp_path / "store", small_ds, k)
        sctx = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"))
        sctx.build(jobs=1)
        sctx.merged()
        assert sctx.last_merge_stats["mode"] == "full"

        append_shard(tmp_path / "store", tail)
        assert sctx.refresh() == 1
        sctx.build(jobs=1)
        merged = sctx.merged()
        assert sctx.last_merge_stats["mode"] == "incremental"

        fresh = AnalysisContext(small_ds)
        assert merged.dataset.attack_columns_equal(small_ds)
        families = [f for f in small_ds.active_families if fresh.family_attacks(f).size]
        got = _collect_views(merged, families)
        want = _collect_views(fresh, families)
        for label in want:
            _assert_view_equal(label, got[label], want[label])

    def test_family_first_seen_only_in_appended_shard(self, small_ds, tmp_path):
        """A battery run before the append must not poison the re-merge.

        Reading a family with no attacks yet lazily builds an *empty*
        ``family_starts`` view on the merged context; the incremental
        path must not take key presence as evidence the family has a
        previous series to extend (its dispersion kernels raise on
        empty families).
        """
        from repro.io import colstore as colstore_mod

        first_row = {}
        for i, name in enumerate(small_ds.families):
            rows = np.flatnonzero(small_ds.family_idx == i)
            if rows.size:
                first_row[name] = int(rows[0])
        family, cut = max(first_row.items(), key=lambda kv: kv[1])
        if cut < 10 or small_ds.n_attacks - cut < 2:
            pytest.skip("every family starts too early in this dataset")

        head = colstore_mod._slice_dataset(small_ds, 0, cut)
        tail = colstore_mod._slice_dataset(small_ds, cut, small_ds.n_attacks)
        append_shard(tmp_path / "store", head)
        sctx = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"))
        sctx.build(jobs=1)
        prev = sctx.merged()
        # Simulate the battery touching the not-yet-seen family.
        assert prev.family_starts(family).size == 0

        append_shard(tmp_path / "store", tail)
        assert sctx.refresh() == 1
        sctx.build(jobs=1)
        merged = sctx.merged()
        assert sctx.last_merge_stats["mode"] == "incremental"

        fresh = AnalysisContext(small_ds)
        families = [f for f in small_ds.active_families if fresh.family_attacks(f).size]
        assert family in families
        got = _collect_views(merged, families)
        want = _collect_views(fresh, families)
        for label in want:
            _assert_view_equal(label, got[label], want[label])

    def test_remerge_recombines_only_the_spine(self, small_ds, tmp_path):
        k = 8
        tail = _append_store(tmp_path / "store", small_ds, k)
        sctx = ShardedAnalysisContext(
            ShardedDatasetStore(tmp_path / "store"),
            merge_cache=MergeCache(tmp_path / "mc"),
        )
        sctx.build(jobs=1)
        sctx.merged()
        full = sctx.last_merge_stats
        assert full["combined"] == k - 1

        append_shard(tmp_path / "store", tail)
        sctx.refresh()
        sctx.build(jobs=1)
        sctx.merged()
        stats = sctx.last_merge_stats
        assert stats["mode"] == "incremental"
        # The aligned (0, 8) subtree is served from the memo; only the
        # one spine combine against the new leaf runs.
        assert stats["reused"] >= 1
        assert stats["combined"] < k - 1

    def test_unchanged_store_reuses_finalized_context(self, small_ds, tmp_path):
        _append_store(tmp_path / "store", small_ds, 3)
        sctx = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"))
        sctx.build(jobs=1)
        first = sctx.merged()
        assert sctx.merged() is first  # memoized, no re-dispatch
        # Even with the memo dropped, matching shard signatures serve
        # the previously finalized context instead of re-merging.
        sctx._merged = None
        assert sctx.merged() is first
        assert sctx.last_merge_stats["mode"] == "unchanged"

    def test_cold_process_reuses_disk_memo(self, small_ds, tmp_path):
        _append_store(tmp_path / "store", small_ds, 5)
        cache = MergeCache(tmp_path / "mc")
        warm = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"), merge_cache=cache)
        warm.build(jobs=1)
        warm.merged()
        assert warm.last_merge_stats["combined"] == 4

        # A new context over the same store: the whole reduce is one
        # disk lookup of the (0, n) spine prefix.
        cold = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"), merge_cache=cache)
        cold.build(jobs=1)
        merged = cold.merged()
        stats = cold.last_merge_stats
        assert (stats["reused"], stats["combined"]) == (1, 0)
        assert merged.dataset.attack_columns_equal(warm.merged().dataset)

    def test_corrupt_cache_entry_falls_back_to_full_merge(self, small_ds, tmp_path):
        tail = _append_store(tmp_path / "store", small_ds, 3)
        append_shard(tmp_path / "store", tail)  # 4 shards covering all rows
        cache = MergeCache(tmp_path / "mc")
        warm = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"), merge_cache=cache)
        warm.build(jobs=1)
        warm.merged()
        for entry in cache.dir.iterdir():
            entry.write_bytes(b"not a pickle")

        cold = ShardedAnalysisContext(ShardedDatasetStore(tmp_path / "store"), merge_cache=cache)
        cold.build(jobs=1)
        merged = cold.merged()  # silent miss, never an error
        stats = cold.last_merge_stats
        assert (stats["reused"], stats["combined"]) == (0, 3)
        fresh = AnalysisContext(small_ds)
        families = [f for f in small_ds.active_families if fresh.family_attacks(f).size]
        got = _collect_views(merged, families)
        want = _collect_views(fresh, families)
        for label in want:
            _assert_view_equal(label, got[label], want[label])


class TestReferenceFoldParity:
    """merged() against the retained serial reference fold."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_tree_merge_matches_reference_fold(self, small_ds, k):
        sctx = ShardedAnalysisContext(ShardedDatasetStore.partition(small_ds, shards=k))
        sctx.build(jobs=1)
        merged = sctx.merged()
        reference = sctx.merged_reference()
        families = [
            f for f in small_ds.active_families if AnalysisContext(small_ds).family_attacks(f).size
        ]
        got = _collect_views(merged, families)
        want = _collect_views(reference, families)
        for label in want:
            _assert_view_equal(label, got[label], want[label])

    def test_jobs_invariance(self, small_ds):
        sctx1 = ShardedAnalysisContext(ShardedDatasetStore.partition(small_ds, shards=5))
        sctx1.build(jobs=1)
        sctx4 = ShardedAnalysisContext(ShardedDatasetStore.partition(small_ds, shards=5))
        sctx4.build(jobs=4)
        one = [r.render() for r in run_all(sctx1.merged(jobs=1), jobs=1)]
        four = [r.render() for r in run_all(sctx4.merged(jobs=4), jobs=4)]
        assert one == four


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_SCALE"),
    reason="set REPRO_BENCH_SCALE to run the full-scale shard-merge sweep",
)
def test_full_scale_sharded_battery_byte_identical():
    scale = float(os.environ["REPRO_BENCH_SCALE"])
    ds = generate_dataset(DatasetConfig(seed=7, scale=scale))
    sctx = ShardedAnalysisContext(ShardedDatasetStore.partition(ds, shards=8))
    sctx.build(jobs=1)
    sharded = [r.render() for r in run_all(sctx.merged(), jobs=1)]
    flat = [r.render() for r in run_all(AnalysisContext(ds), jobs=1)]
    assert sharded == flat
