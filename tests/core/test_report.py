"""Tests for the plain-text table renderers."""

import pytest

from repro.core.report import (
    format_table,
    render_collaboration_table,
    render_country_table,
    render_headline,
    render_protocol_table,
    render_workload_summary,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])


class TestRenderers:
    def test_workload(self, tiny_ds):
        out = render_workload_summary(tiny_ds)
        assert "# of ddos_id" in out
        assert str(tiny_ds.n_attacks) in out

    def test_protocols(self, tiny_ds):
        out = render_protocol_table(tiny_ds)
        assert "HTTP" in out
        assert "dirtjumper" in out

    def test_countries(self, tiny_ds):
        out = render_country_table(tiny_ds)
        assert "dirtjumper" in out

    def test_collaboration(self, tiny_ds):
        out = render_collaboration_table(tiny_ds)
        assert "Intra-Family" in out and "Inter-Family" in out

    def test_headline(self, tiny_ds):
        out = render_headline(tiny_ds)
        assert "attacks:" in out
        assert "durations:" in out
