"""Tests for interval analyses (Figs 3-5)."""

import numpy as np
import pytest

from repro.core.intervals import (
    INTERVAL_BUCKETS,
    attack_intervals,
    family_interval_cdf,
    family_intervals,
    interval_clusters,
    interval_summary,
    simultaneous_attacks,
)


class TestIntervals:
    def test_all_intervals_length(self, small_ds):
        gaps = attack_intervals(small_ds)
        assert gaps.size == small_ds.n_attacks - 1
        assert np.all(gaps >= 0)

    def test_family_intervals_exclude_simultaneous(self, small_ds):
        with_sim = family_intervals(small_ds, "dirtjumper", include_simultaneous=True)
        without = family_intervals(small_ds, "dirtjumper", include_simultaneous=False)
        assert without.size <= with_sim.size
        assert np.all(without > 0)

    def test_summary_fields(self, small_ds):
        s = interval_summary(small_ds)
        assert 0 <= s.simultaneous_fraction <= 1
        assert s.p80_seconds >= 0
        assert s.longest_days * 86400 == pytest.approx(s.stats.maximum)

    def test_summary_needs_two_attacks(self, small_ds):
        sub = small_ds.subset(np.array([0]))
        with pytest.raises(ValueError):
            interval_summary(sub)


class TestSimultaneous:
    def test_report_consistency(self, small_ds):
        report = simultaneous_attacks(small_ds)
        assert report.single_family_events >= 0
        assert report.multi_family_events >= 0
        for (a, b), count in report.pair_counts:
            assert a < b
            assert count >= 1

    def test_tolerance_widens_events(self, small_ds):
        tight = simultaneous_attacks(small_ds, tolerance=0.0)
        loose = simultaneous_attacks(small_ds, tolerance=30.0)
        tight_total = tight.single_family_events + tight.multi_family_events
        loose_total = loose.single_family_events + loose.multi_family_events
        # Looser grouping merges runs: events cannot multiply.
        assert loose_total <= tight_total or loose.multi_family_events >= tight.multi_family_events


class TestClusters:
    def test_buckets_cover_all_gaps(self, small_ds):
        clusters = interval_clusters(small_ds, "dirtjumper")
        gaps = family_intervals(small_ds, "dirtjumper", include_simultaneous=False)
        assert sum(clusters.values()) == gaps.size

    def test_bucket_labels_stable(self):
        labels = [label for label, _lo, _hi in INTERVAL_BUCKETS]
        assert "6-7 min" in labels and "20-40 min" in labels and "2-3 h" in labels
        # Buckets are contiguous and ordered.
        for (_l1, _lo1, hi1), (_l2, lo2, _hi2) in zip(INTERVAL_BUCKETS, INTERVAL_BUCKETS[1:]):
            assert hi1 == lo2


class TestFamilyCdf:
    def test_cdf_valid(self, small_ds):
        xs, ps = family_interval_cdf(small_ds, "pandora")
        assert np.all(np.diff(xs) >= 0)
        assert ps[-1] == pytest.approx(1.0)

    def test_single_attack_family_raises(self, small_ds):
        # Construct a subset with a single pandora attack.
        idx = small_ds.attacks_of("pandora")[:1]
        sub = small_ds.subset(idx)
        with pytest.raises(ValueError):
            family_interval_cdf(sub, "pandora")
