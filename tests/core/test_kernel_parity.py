"""Parity tests pinning the sweep-line kernels to their reference scans.

The vectorized kernels in ``core.collaboration``, ``core.consecutive``,
``core.shift`` and ``core.geolocation`` replaced straightforward Python
loops; the originals are kept as ``_reference_*`` functions and these
tests pin the two implementations equal — exactly for the integer/tuple
kernels, allclose for the dispersion kernel (its float summation order
differs) — across randomized datasets and the boundary cases the window
arithmetic is most likely to get wrong.

The full-scale sweep (marked ``slow``) only runs when
``REPRO_BENCH_SCALE`` names a scale, as in the CI parity step.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import geolocation as geo
from repro.core.collaboration import (
    DURATION_WINDOW_SECONDS,
    START_WINDOW_SECONDS,
    _detect_collaborations,
    _reference_detect_collaborations,
)
from repro.core.consecutive import (
    CHAIN_MARGIN_SECONDS,
    _detect_chains,
    _reference_detect_chains,
)
from repro.core.context import AnalysisContext
from repro.core.shift import _reference_weekly_shift, _weekly_shift
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.io.ingest import dataset_from_records
from repro.monitor.schemas import DDoSAttackRecord, Protocol

RANDOM_SEEDS = [11, 23, 47, 101]


def _record(
    i: int,
    *,
    botnet: int,
    family: str,
    target: int,
    start: float,
    duration: float,
) -> DDoSAttackRecord:
    return DDoSAttackRecord(
        ddos_id=i,
        botnet_id=botnet,
        family=family,
        category=Protocol.TCP,
        target_ip=target,
        timestamp=start,
        end_time=start + duration,
        asn=64500 + target % 7,
        country_code="US",
        city="Testville",
        organization="org",
        lat=0.0,
        lon=0.0,
        magnitude=3,
    )


def _random_attack_table(seed: int):
    """A dense random attack table: few targets, clustered starts.

    Small target and botnet pools plus exponential start gaps around the
    60 s windows make candidate runs, duplicate botnets, and margin-edge
    gaps all common, so the kernels' branchy paths are actually hit.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(40, 160))
    t = 0.0
    records = []
    for i in range(n):
        t += float(rng.exponential(45.0))
        records.append(
            _record(
                i,
                botnet=int(rng.integers(1, 6)),
                family=str(rng.choice(["alpha", "beta", "gamma"])),
                target=int(rng.integers(1, 5)),
                start=t,
                duration=float(rng.exponential(1200.0)) + 1.0,
            )
        )
    return dataset_from_records(records)


def _assert_shift_equal(got, ref):
    assert got.family == ref.family
    np.testing.assert_array_equal(got.weeks, ref.weeks)
    np.testing.assert_array_equal(got.bots_existing, ref.bots_existing)
    np.testing.assert_array_equal(got.bots_new, ref.bots_new)
    np.testing.assert_array_equal(got.new_countries, ref.new_countries)


def _assert_dataset_parity(ds):
    """Exact collaboration/chain parity on one dataset."""
    assert _detect_collaborations(
        ds, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS
    ) == _reference_detect_collaborations(
        ds, START_WINDOW_SECONDS, DURATION_WINDOW_SECONDS
    )
    assert _detect_chains(ds, CHAIN_MARGIN_SECONDS, 2) == _reference_detect_chains(
        ds, CHAIN_MARGIN_SECONDS, 2
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_scan_kernels(self, seed):
        _assert_dataset_parity(_random_attack_table(seed))

    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_nondefault_windows(self, seed):
        ds = _random_attack_table(seed)
        assert _detect_collaborations(ds, 120.0, 300.0) == (
            _reference_detect_collaborations(ds, 120.0, 300.0)
        )
        assert _detect_chains(ds, 15.0, 3) == _reference_detect_chains(ds, 15.0, 3)

    def test_generated_dataset(self, tiny_ds):
        """The generated tiny dataset exercises the full Botlist side."""
        _assert_dataset_parity(tiny_ds)
        ctx = AnalysisContext(tiny_ds)
        for family in tiny_ds.active_families:
            _assert_shift_equal(
                _weekly_shift(ctx, family), _reference_weekly_shift(ctx, family)
            )
            ts, values = geo.snapshot_dispersions(ctx, family)
            ref_ts, ref_values = geo._reference_snapshot_dispersions(ctx, family)
            np.testing.assert_array_equal(ts, ref_ts)
            np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-6)


class TestEdgeCases:
    def test_single_attack(self):
        ds = dataset_from_records(
            [_record(0, botnet=1, family="alpha", target=1, start=30.0, duration=60.0)]
        )
        assert _detect_collaborations(ds, 60.0, 1800.0) == []
        assert _detect_chains(ds, 60.0, 2) == []
        _assert_dataset_parity(ds)

    def test_all_simultaneous_starts(self):
        """Identical starts collaborate but never chain (no >1 s stagger)."""
        ds = dataset_from_records(
            [
                _record(i, botnet=i + 1, family="alpha", target=1, start=100.0, duration=600.0)
                for i in range(6)
            ]
        )
        events = _detect_collaborations(ds, 60.0, 1800.0)
        assert len(events) == 1 and len(events[0].attack_indices) == 6
        assert _detect_chains(ds, 60.0, 2) == []
        _assert_dataset_parity(ds)

    def test_chain_margin_boundaries(self):
        """Gaps exactly at the margin link; one past it break the chain."""
        base = [
            # end-to-start gap exactly +60 s: links.
            _record(0, botnet=1, family="alpha", target=1, start=0.0, duration=100.0),
            _record(1, botnet=2, family="alpha", target=1, start=160.0, duration=100.0),
            # gap 60.5 s: breaks.
            _record(2, botnet=3, family="alpha", target=1, start=320.5, duration=100.0),
            # overlap with gap exactly -60 s and start stagger > 1 s: links.
            _record(3, botnet=4, family="alpha", target=1, start=360.5, duration=100.0),
            # start stagger exactly 1 s: simultaneous, never links.
            _record(4, botnet=5, family="alpha", target=1, start=361.5, duration=100.0),
        ]
        ds = dataset_from_records(base)
        chains = _detect_chains(ds, 60.0, 2)
        assert [c.attack_indices for c in chains] == [(0, 1), (2, 3)]
        _assert_dataset_parity(ds)

    def test_duration_window_boundary(self):
        """Durations exactly 1800 s from the first member stay; beyond drop."""
        ds = dataset_from_records(
            [
                _record(0, botnet=1, family="alpha", target=1, start=0.0, duration=600.0),
                _record(1, botnet=2, family="alpha", target=1, start=10.0, duration=2400.0),
                _record(2, botnet=3, family="alpha", target=1, start=20.0, duration=2400.5),
            ]
        )
        events = _detect_collaborations(ds, 60.0, 1800.0)
        assert [e.attack_indices for e in events] == [(0, 1)]
        _assert_dataset_parity(ds)

    def test_botnet_retry_after_duration_miss(self):
        """A botnet whose first attack fails the duration filter may still
        contribute a later conforming attack (dedupe runs after the filter)."""
        ds = dataset_from_records(
            [
                _record(0, botnet=1, family="alpha", target=1, start=0.0, duration=600.0),
                _record(1, botnet=2, family="alpha", target=1, start=10.0, duration=9000.0),
                _record(2, botnet=2, family="alpha", target=1, start=20.0, duration=700.0),
            ]
        )
        events = _detect_collaborations(ds, 60.0, 1800.0)
        assert [e.attack_indices for e in events] == [(0, 2)]
        _assert_dataset_parity(ds)

    def test_family_without_participants(self):
        """Ingested datasets carry no Botlist: shift and snapshots agree on
        the degenerate zero-participant family."""
        ds = _random_attack_table(RANDOM_SEEDS[0])
        ctx = AnalysisContext(ds)
        family = ds.active_families[0]
        _assert_shift_equal(
            _weekly_shift(ctx, family), _reference_weekly_shift(ctx, family)
        )
        ts, values = geo.snapshot_dispersions(ctx, family)
        ref_ts, ref_values = geo._reference_snapshot_dispersions(ctx, family)
        np.testing.assert_array_equal(ts, ref_ts)
        np.testing.assert_array_equal(values, ref_values)
        assert values.size == 0


class TestPrewarmIdentity:
    def test_result_identical_for_any_jobs(self, tiny_ds):
        from repro.experiments.registry import run_all

        baseline_ctx = AnalysisContext(tiny_ds)
        baseline = [r.render() for r in run_all(baseline_ctx, jobs=1)]
        seeded = {}
        for jobs in (1, 4):
            ctx = AnalysisContext(tiny_ds)
            seeded[jobs] = ctx.prewarm(jobs=jobs)
            assert [r.render() for r in run_all(ctx, jobs=1)] == baseline
        assert seeded[1] == seeded[4]

    def test_prewarm_skips_materialized_views(self, tiny_ds):
        ctx = AnalysisContext(tiny_ds)
        ctx.prewarm(jobs=1)
        keys = set(ctx.view_keys())
        assert ctx.prewarm(jobs=1) == 0
        assert set(ctx.view_keys()) == keys


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_SCALE"),
    reason="set REPRO_BENCH_SCALE to run the full-scale parity sweep",
)
def test_full_scale_parity():
    scale = float(os.environ["REPRO_BENCH_SCALE"])
    ds = generate_dataset(DatasetConfig(seed=7, scale=scale))
    _assert_dataset_parity(ds)
    ctx = AnalysisContext(ds)
    busiest = max(ds.active_families, key=lambda f: ctx.family_attacks(f).size)
    _assert_shift_equal(
        _weekly_shift(ctx, busiest), _reference_weekly_shift(ctx, busiest)
    )
    ts, values = geo.snapshot_dispersions(ctx, busiest)
    ref_ts, ref_values = geo._reference_snapshot_dispersions(ctx, busiest)
    np.testing.assert_array_equal(ts, ref_ts)
    np.testing.assert_allclose(values, ref_values, rtol=1e-9, atol=1e-6)
