"""Tests for the §III-B spoofing/reflection checks."""

import numpy as np
import pytest

from repro.core.sanity import check_no_spoofing


class TestNoSpoofing:
    def test_generated_data_passes(self, small_ds):
        evidence = check_no_spoofing(small_ds)
        assert evidence.connection_oriented_fraction > 0.5
        assert evidence.source_victim_overlap == 0
        assert not evidence.spoofing_plausible
        assert not evidence.reflection_plausible

    def test_fractions_consistent(self, small_ds):
        evidence = check_no_spoofing(small_ds)
        assert 0 <= evidence.udp_fraction <= 1
        assert evidence.n_attacks == small_ds.n_attacks
        assert evidence.udp_fraction + evidence.connection_oriented_fraction <= 1.0 + 1e-9

    def test_overlap_flags_spoofing(self, small_ds):
        # Inject a victim IP into the bot registry: the check must flag it.
        tampered_bots = small_ds.bots
        original = tampered_bots.ip[0]
        tampered_bots.ip[0] = small_ds.victims.ip[0]
        try:
            evidence = check_no_spoofing(small_ds)
            assert evidence.source_victim_overlap >= 1
            assert evidence.spoofing_plausible
        finally:
            tampered_bots.ip[0] = original

    def test_empty_raises(self, small_ds):
        sub = small_ds.subset(np.array([0]))
        sub_empty = sub.subset(np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            check_no_spoofing(sub_empty)
