"""Tests for concurrent-collaboration detection (Table VI, Figs 15-16).

The detector reads only the attack table; these tests compare it against
the generator's staged ground truth.
"""

import numpy as np
import pytest

from repro.core.collaboration import (
    collaboration_table,
    detect_collaborations,
    intra_family_stats,
    pair_analysis,
)


@pytest.fixture(scope="module")
def events(small_ds):
    return detect_collaborations(small_ds)


class TestDetection:
    def test_events_well_formed(self, small_ds, events):
        for event in events:
            assert len(event.attack_indices) >= 2
            targets = {int(small_ds.target_idx[i]) for i in event.attack_indices}
            assert targets == {event.target_index}
            starts = [float(small_ds.start[i]) for i in event.attack_indices]
            assert max(starts) - min(starts) <= 60.0 * (len(starts))
            botnets = [int(small_ds.botnet_id[i]) for i in event.attack_indices]
            assert len(set(botnets)) == len(botnets)

    def test_staged_intra_collabs_detected(self, small_ds, events):
        """Every staged intra-family collaboration must be found."""
        staged_groups = {}
        for i in np.flatnonzero(small_ds.truth_collab_kind == 1):
            staged_groups.setdefault(int(small_ds.truth_collab_group[i]), []).append(i)
        staged_groups = {g: m for g, m in staged_groups.items() if len(m) >= 2}
        detected_attack_sets = [set(e.attack_indices) for e in events]
        found = 0
        for members in staged_groups.values():
            member_set = set(int(i) for i in members)
            if any(member_set <= d for d in detected_attack_sets):
                found += 1
        assert found >= 0.9 * len(staged_groups)

    def test_staged_inter_collabs_detected(self, small_ds, events):
        staged = {}
        for i in np.flatnonzero(small_ds.truth_collab_kind == 2):
            staged.setdefault(int(small_ds.truth_collab_group[i]), []).append(int(i))
        inter_detected = [set(e.attack_indices) for e in events if e.is_inter_family]
        for members in staged.values():
            assert any(set(members) <= d for d in inter_detected)

    def test_inter_family_flag(self, small_ds, events):
        for event in events:
            assert event.is_inter_family == (len(event.families) > 1)

    def test_windows_respected(self, small_ds):
        strict = detect_collaborations(small_ds, start_window=1.0, duration_window=10.0)
        loose = detect_collaborations(small_ds, start_window=120.0, duration_window=7200.0)
        assert len(strict) <= len(loose)


class TestTable:
    def test_table_covers_active_families(self, small_ds, events):
        table = collaboration_table(small_ds, events)
        assert set(table) == set(small_ds.active_families)

    def test_event_accounting(self, small_ds, events):
        table = collaboration_table(small_ds, events)
        total_intra = sum(row["intra"] for row in table.values())
        assert total_intra == sum(1 for e in events if not e.is_inter_family)

    def test_dirtjumper_is_hub(self, small_ds, events):
        table = collaboration_table(small_ds, events)
        hub = max(table, key=lambda f: table[f]["intra"])
        assert hub == "dirtjumper"


class TestStats:
    def test_intra_stats(self, small_ds, events):
        stats = intra_family_stats(small_ds, "dirtjumper", events)
        assert stats.n_events >= 1
        assert stats.mean_botnets_per_event >= 2.0
        assert 0 <= stats.equal_magnitude_fraction <= 1
        assert len(stats.points) >= 2 * stats.n_events

    def test_pair_analysis(self, small_ds, events):
        pa = pair_analysis(small_ds, "dirtjumper", "pandora", events)
        assert pa.n_events >= 1
        assert pa.n_targets >= 1
        assert pa.mean_duration_b > pa.mean_duration_a  # pandora runs longer
        for _t, dur_a, dur_b, mag_a, mag_b in pa.series:
            assert abs(dur_b - dur_a) <= 1800.0
            # Staged magnitudes are equal; the realised bot counts can
            # differ by a few after sampling de-duplication.
            assert abs(mag_a - mag_b) <= 0.4 * max(mag_a, mag_b)

    def test_pair_same_family_rejected(self, small_ds):
        with pytest.raises(ValueError):
            pair_analysis(small_ds, "pandora", "pandora")
