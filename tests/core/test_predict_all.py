"""The per-family forecast fan-out: parallel == serial, and it seeds views."""

from __future__ import annotations

import numpy as np

from repro.core.context import AnalysisContext
from repro.core.prediction import (
    MIN_SERIES_POINTS,
    predict_all_families,
    predict_family_dispersion,
)


def test_predict_all_matches_per_family(small_ds):
    ctx = AnalysisContext(small_ds)  # unshared: keep session fixtures clean
    out = predict_all_families(ctx, jobs=1)
    assert out  # at least one family has enough points at this scale
    for family, forecast in out.items():
        direct = predict_family_dispersion(ctx, family)
        np.testing.assert_array_equal(forecast.prediction, direct.prediction)
        assert forecast.comparison == direct.comparison


def test_predict_all_parallel_matches_serial(small_ds):
    serial = predict_all_families(AnalysisContext(small_ds), jobs=1)
    parallel = predict_all_families(AnalysisContext(small_ds), jobs=2)
    assert set(serial) == set(parallel)
    for family in serial:
        np.testing.assert_array_equal(
            serial[family].prediction, parallel[family].prediction
        )
        assert serial[family].comparison == parallel[family].comparison


def test_predict_all_seeds_context_views(small_ds):
    ctx = AnalysisContext(small_ds)
    out = predict_all_families(ctx, jobs=2)
    for family, forecast in out.items():
        # Table IV's memoized accessor must reuse the fan-out's result.
        assert ctx.dispersion_forecast(family) is forecast


def test_predict_all_skips_short_series(small_ds):
    ctx = AnalysisContext(small_ds)
    out = predict_all_families(ctx, jobs=1)
    from repro.core.prediction import _dispersion_series

    for family in small_ds.active_families:
        eligible = _dispersion_series(ctx, family, True).size >= MIN_SERIES_POINTS
        assert (family in out) == eligible
