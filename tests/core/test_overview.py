"""Tests for the overview analyses (Tables II-III, Figs 1-2)."""

import pytest

from repro.core.overview import (
    daily_attack_counts,
    protocol_breakdown,
    protocol_popularity,
    workload_summary,
)
from repro.monitor.schemas import Protocol


class TestWorkloadSummary:
    def test_counts_match_registries(self, tiny_ds):
        s = workload_summary(tiny_ds)
        assert s.attackers.n_ips == tiny_ds.bots.n_bots
        assert s.victims.n_ips == tiny_ds.victims.n_targets
        assert s.n_attacks == tiny_ds.n_attacks
        assert s.n_botnets == len(tiny_ds.botnets)
        assert s.n_traffic_types == 7

    def test_victim_side_smaller(self, tiny_ds):
        s = workload_summary(tiny_ds)
        assert s.victims.n_ips < s.attackers.n_ips
        assert s.victims.n_countries <= s.attackers.n_countries


class TestProtocols:
    def test_breakdown_sums_to_total(self, tiny_ds):
        rows = protocol_breakdown(tiny_ds)
        assert sum(c for _p, _f, c in rows) == tiny_ds.n_attacks

    def test_popularity_covers_all_protocols(self, tiny_ds):
        pop = protocol_popularity(tiny_ds)
        assert set(pop) == set(Protocol)
        assert sum(pop.values()) == tiny_ds.n_attacks

    def test_http_dominates(self, tiny_ds):
        pop = protocol_popularity(tiny_ds)
        assert pop[Protocol.HTTP] == max(pop.values())

    def test_breakdown_protocol_major_order(self, tiny_ds):
        rows = protocol_breakdown(tiny_ds)
        protos = [p for p, _f, _c in rows]
        assert protos == sorted(protos, key=lambda p: p.value)


class TestDaily:
    def test_counts_sum(self, tiny_ds):
        daily = daily_attack_counts(tiny_ds)
        assert daily.counts.sum() == tiny_ds.n_attacks
        assert daily.n_days >= tiny_ds.window.n_days

    def test_max_consistency(self, tiny_ds):
        daily = daily_attack_counts(tiny_ds)
        assert daily.max_per_day == daily.counts.max()
        assert daily.counts[daily.max_day_index] == daily.max_per_day
        assert daily.max_day_top_family in tiny_ds.families

    def test_family_filter(self, tiny_ds):
        fam = "dirtjumper"
        daily = daily_attack_counts(tiny_ds, family=fam)
        assert daily.counts.sum() == tiny_ds.attacks_of(fam).size
        assert daily.max_day_top_family == fam

    def test_mean_per_day(self, tiny_ds):
        daily = daily_attack_counts(tiny_ds)
        expected = tiny_ds.n_attacks / tiny_ds.window.n_days
        assert daily.mean_per_day == pytest.approx(expected, rel=0.05)


class TestPeriodicity:
    def test_no_diurnal_pattern(self, small_ds):
        """§III-A: bot-driven attacks show no strong daily/weekly cycles."""
        from repro.core.overview import periodicity_profile

        profile = periodicity_profile(small_ds)
        assert profile.hour_of_day.sum() == small_ds.n_attacks
        assert profile.day_of_week.sum() == small_ds.n_attacks
        assert not profile.diurnal_pattern_detected
        assert not profile.weekly_pattern_detected

    def test_family_filter(self, small_ds):
        from repro.core.overview import periodicity_profile

        profile = periodicity_profile(small_ds, family="dirtjumper")
        assert profile.hour_of_day.sum() == small_ds.attacks_of("dirtjumper").size

    def test_empty_raises(self, small_ds):
        import pytest

        from repro.core.overview import periodicity_profile

        with pytest.raises(ValueError):
            periodicity_profile(small_ds, family="zemra")
