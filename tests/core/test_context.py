"""Tests for the shared derived-view layer (AnalysisContext)."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core import collaboration, consecutive, geolocation
from repro.core.context import AnalysisContext
from repro.core.collaboration import detect_collaborations
from repro.core.consecutive import detect_chains
from repro.core.geolocation import attack_dispersions
from repro.experiments.registry import run_all


@pytest.fixture()
def ctx(small_ds):
    """A fresh, unshared context (memoization state isolated per test)."""
    return AnalysisContext(small_ds)


class TestCoercion:
    def test_of_dataset_is_shared(self, small_ds):
        assert AnalysisContext.of(small_ds) is AnalysisContext.of(small_ds)

    def test_of_context_is_identity(self, ctx):
        assert AnalysisContext.of(ctx) is ctx

    def test_constructor_is_unshared(self, small_ds):
        assert AnalysisContext(small_ds) is not AnalysisContext.of(small_ds)

    def test_rejects_non_dataset(self):
        with pytest.raises(TypeError):
            AnalysisContext("nope")
        with pytest.raises(TypeError):
            AnalysisContext.of(42)

    def test_dataset_pickle_drops_context(self, small_ds):
        AnalysisContext.of(small_ds)  # attach
        clone = pickle.loads(pickle.dumps(small_ds))
        assert "_analysis_context" not in clone.__dict__


class TestBuildOnce:
    def test_collaborations_computed_once(self, ctx, monkeypatch):
        calls = []
        real = collaboration._detect_collaborations
        monkeypatch.setattr(
            collaboration,
            "_detect_collaborations",
            lambda *a, **kw: calls.append(1) or real(*a, **kw),
        )
        first = detect_collaborations(ctx)
        second = detect_collaborations(ctx)
        assert first is second
        assert len(calls) == 1

    def test_chains_computed_once(self, ctx, monkeypatch):
        calls = []
        real = consecutive._detect_chains
        monkeypatch.setattr(
            consecutive,
            "_detect_chains",
            lambda *a, **kw: calls.append(1) or real(*a, **kw),
        )
        first = detect_chains(ctx)
        second = detect_chains(ctx)
        assert first is second
        assert len(calls) == 1

    def test_dispersions_computed_once_per_family(self, ctx, monkeypatch):
        calls = []
        real = geolocation._attack_dispersions
        monkeypatch.setattr(
            geolocation,
            "_attack_dispersions",
            lambda *a, **kw: calls.append(a[1]) or real(*a, **kw),
        )
        family = ctx.dataset.active_families[0]
        attack_dispersions(ctx, family)
        attack_dispersions(ctx, family)
        ctx.attack_dispersions(family)
        assert calls == [family]

    def test_every_view_built_at_most_once(self, small_ds, monkeypatch):
        """Generic guarantee: no key's builder ever runs twice."""
        ctx = AnalysisContext(small_ds)
        built: list = []
        real_view = AnalysisContext.view

        def counting_view(self, key, build):
            def counting_build():
                built.append(key)
                return build()

            return real_view(self, key, counting_build)

        monkeypatch.setattr(AnalysisContext, "view", counting_view)
        for _round in range(2):
            ctx.attack_intervals()
            ctx.durations()
            ctx.target_country_counts()
            ctx.workload_summary()
            ctx.protocol_breakdown()
            ctx.daily_distribution()
            for family in ctx.dataset.active_families[:3]:
                ctx.family_attacks(family)
                ctx.family_intervals(family)
        assert len(built) == len(set(built))

    def test_concurrent_readers_build_once(self, small_ds):
        ctx = AnalysisContext(small_ds)
        builds = []
        barrier = threading.Barrier(4)

        def read():
            barrier.wait()
            return ctx.view(("probe",), lambda: builds.append(1) or object())

        threads = [threading.Thread(target=read) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1


class TestViewsMatchScratch:
    def test_family_attacks(self, ctx):
        ds = ctx.dataset
        for family in ds.active_families:
            expected = np.flatnonzero(ds.family_idx == ds.family_id(family))
            assert np.array_equal(ctx.family_attacks(family), expected)

    def test_target_attacks(self, ctx):
        ds = ctx.dataset
        target = int(ds.target_idx[0])
        expected = np.flatnonzero(ds.target_idx == target)
        assert np.array_equal(ctx.target_attacks(target), expected)

    def test_attack_intervals(self, ctx):
        assert np.array_equal(ctx.attack_intervals(), np.diff(ctx.dataset.start))

    def test_durations(self, ctx):
        ds = ctx.dataset
        assert np.array_equal(ctx.durations(), ds.end - ds.start)
        family = ds.active_families[0]
        idx = np.flatnonzero(ds.family_idx == ds.family_id(family))
        assert np.array_equal(ctx.durations(family), (ds.end - ds.start)[idx])

    def test_target_country_counts(self, ctx):
        ds = ctx.dataset
        expected = np.unique(ds.victims.country_idx[ds.target_idx], return_counts=True)
        uniq, counts = ctx.target_country_counts()
        assert np.array_equal(uniq, expected[0])
        assert np.array_equal(counts, expected[1])

    def test_family_participants(self, ctx):
        ds = ctx.dataset
        family = ds.active_families[0]
        idx = ctx.family_attacks(family)
        offsets, flat = ctx.family_participants(family)
        assert offsets.size == idx.size + 1
        for k, i in enumerate(idx):
            assert np.array_equal(
                flat[offsets[k] : offsets[k + 1]], ds.participants_of(int(i))
            )

    def test_collaborations_match_raw_scan(self, ctx):
        raw = collaboration._detect_collaborations(
            ctx.dataset,
            collaboration.START_WINDOW_SECONDS,
            collaboration.DURATION_WINDOW_SECONDS,
        )
        assert ctx.collaborations() == raw

    def test_chains_match_raw_scan(self, ctx):
        raw = consecutive._detect_chains(
            ctx.dataset, consecutive.CHAIN_MARGIN_SECONDS, 2
        )
        assert ctx.chains() == raw


class TestRunAllParity:
    def test_jobs_do_not_change_output(self, small_ds):
        sequential = run_all(AnalysisContext(small_ds), jobs=1)
        parallel = run_all(AnalysisContext(small_ds), jobs=4)
        assert [r.render() for r in sequential] == [r.render() for r in parallel]

    def test_order_is_paper_order(self, small_ds):
        ids = [r.experiment_id for r in run_all(AnalysisContext(small_ds), jobs=3)]
        assert ids[0] == "table2_protocols"
        assert ids[-1] == "fig18_chains"
        assert len(ids) == 18


class TestSnapshot:
    def test_export_import_roundtrip(self, small_ds):
        ctx = AnalysisContext(small_ds)
        ctx.attack_intervals()
        ctx.durations()
        ctx.collaborations()
        snapshot = ctx.export_views()
        assert len(snapshot) == ctx.n_views

        fresh = AnalysisContext(small_ds)
        assert fresh.import_views(snapshot) == len(snapshot)
        assert np.array_equal(fresh.attack_intervals(), ctx.attack_intervals())
        assert fresh.collaborations() == ctx.collaborations()

    def test_existing_views_win_on_import(self, small_ds):
        ctx = AnalysisContext(small_ds)
        mine = ctx.attack_intervals()
        restored = ctx.import_views({("attack_intervals",): np.zeros(3)})
        assert restored == 0
        assert ctx.attack_intervals() is mine

    def test_unpicklable_views_skipped(self, small_ds):
        ctx = AnalysisContext(small_ds)
        ctx.view(("unpicklable",), lambda: threading.Lock())
        ctx.attack_intervals()
        snapshot = ctx.export_views()
        assert ("unpicklable",) not in snapshot
        assert ("attack_intervals",) in snapshot
