"""Tests for duration analyses (Figs 6-7)."""

import numpy as np
import pytest

from repro.core.durations import (
    duration_cdf,
    duration_summary,
    duration_timeline,
    durations,
)


class TestDurations:
    def test_matches_columns(self, tiny_ds):
        d = durations(tiny_ds)
        assert np.array_equal(d, tiny_ds.end - tiny_ds.start)

    def test_family_filter(self, tiny_ds):
        fam = "dirtjumper"
        d = durations(tiny_ds, fam)
        assert d.size == tiny_ds.attacks_of(fam).size

    def test_summary_shape(self, small_ds):
        s = duration_summary(small_ds)
        assert s.stats.mean > s.stats.median  # heavy right tail
        assert 0 <= s.under_60s_fraction <= 0.2
        assert 0.5 <= s.under_4h_fraction <= 1.0
        assert s.p80_hours == pytest.approx(s.stats.p80 / 3600.0)

    def test_cdf_valid(self, small_ds):
        xs, ps = duration_cdf(small_ds)
        assert xs.size == small_ds.n_attacks
        assert ps[-1] == pytest.approx(1.0)

    def test_timeline_alignment(self, tiny_ds):
        days, d, fams = duration_timeline(tiny_ds)
        assert days.size == d.size == fams.size == tiny_ds.n_attacks
        assert days.min() >= 0

    def test_empty_family_raises(self, tiny_ds):
        # Minor families launch no attacks.
        with pytest.raises(ValueError):
            duration_summary(tiny_ds, "zemra")
