"""Tests for target analyses (Table V, Fig 14)."""

import pytest

from repro.core.targets import (
    country_breakdown,
    organization_affinity,
    top_target_countries,
    victim_org_types,
)


class TestCountryBreakdown:
    def test_counts_sum(self, small_ds):
        b = country_breakdown(small_ds, "dirtjumper")
        assert b.total_attacks == small_ds.attacks_of("dirtjumper").size
        assert sum(n for _cc, n in b.top) <= b.total_attacks

    def test_top_sorted_descending(self, small_ds):
        b = country_breakdown(small_ds, "dirtjumper")
        counts = [n for _cc, n in b.top]
        assert counts == sorted(counts, reverse=True)

    def test_preferred_country_matches_profile(self, small_ds):
        # Table V calibration: Dirtjumper prefers the US, Pandora Russia.
        assert country_breakdown(small_ds, "dirtjumper").top[0][0] in ("US", "RU")
        assert country_breakdown(small_ds, "pandora").top[0][0] == "RU"

    def test_no_attacks_raises(self, small_ds):
        with pytest.raises(ValueError):
            country_breakdown(small_ds, "zemra")


class TestGlobalTop:
    def test_global_top5(self, small_ds):
        top = top_target_countries(small_ds)
        assert len(top) == 5
        codes = [cc for cc, _n in top]
        # RU and US dominate the calibrated mix.
        assert "RU" in codes and "US" in codes


class TestOrganizationAffinity:
    def test_unfiltered_spots(self, small_ds):
        spots = organization_affinity(small_ds, "pandora")
        assert spots
        assert sum(s.attack_count for s in spots) == small_ds.attacks_of("pandora").size
        counts = [s.attack_count for s in spots]
        assert counts == sorted(counts, reverse=True)

    def test_month_filter_subset(self, small_ds):
        all_spots = organization_affinity(small_ds, "pandora")
        feb = organization_affinity(small_ds, "pandora", year=2013, month=2)
        assert sum(s.attack_count for s in feb) <= sum(s.attack_count for s in all_spots)

    def test_half_month_spec_rejected(self, small_ds):
        with pytest.raises(ValueError):
            organization_affinity(small_ds, "pandora", year=2013)

    def test_empty_month(self, small_ds):
        # July 2014 is outside the observation window.
        assert organization_affinity(small_ds, "pandora", year=2014, month=7) == []


class TestOrgTypes:
    def test_covers_all_attacks(self, small_ds):
        types = victim_org_types(small_ds)
        assert sum(types.values()) == small_ds.n_attacks

    def test_infrastructure_dominates(self, small_ds):
        types = victim_org_types(small_ds)
        infra = sum(types.get(t, 0) for t in
                    ("hosting", "cloud", "datacenter", "registrar", "backbone"))
        assert infra / small_ds.n_attacks > 0.6
