"""Tests for the weekly shift analysis (Fig 8)."""

import numpy as np
import pytest

from repro.core.shift import aggregate_shift, weekly_shift


class TestWeeklyShift:
    def test_arrays_aligned(self, small_ds):
        shift = weekly_shift(small_ds, "dirtjumper")
        assert shift.weeks.size == shift.bots_existing.size == shift.bots_new.size
        assert shift.weeks.size == shift.new_countries.size
        assert np.all(np.diff(shift.weeks) > 0)

    def test_baseline_week_counts_as_existing(self, small_ds):
        shift = weekly_shift(small_ds, "dirtjumper")
        assert shift.bots_new[0] == 0

    def test_affinity_dominates(self, small_ds):
        shift = weekly_shift(small_ds, "dirtjumper")
        assert shift.total_existing > 10 * max(shift.total_new, 1)

    def test_new_countries_monotone_logic(self, small_ds):
        # Once all countries are known, no further "new" bots can appear
        # from those countries: total new countries is bounded by the
        # family's overall footprint.
        shift = weekly_shift(small_ds, "dirtjumper")
        idx = small_ds.attacks_of("dirtjumper")
        bots = np.unique(
            np.concatenate([small_ds.participants_of(int(i)) for i in idx])
        )
        n_countries = np.unique(small_ds.bots.country_idx[bots]).size
        assert shift.new_countries.sum() <= n_countries

    def test_no_attacks_raises(self, small_ds):
        with pytest.raises(ValueError):
            weekly_shift(small_ds, "zemra")


class TestAggregate:
    def test_aggregate_sums_families(self, small_ds):
        total = aggregate_shift(small_ds)
        per = [weekly_shift(small_ds, f) for f in small_ds.active_families
               if small_ds.attacks_of(f).size]
        assert total.total_existing == sum(s.total_existing for s in per)
        assert total.total_new == sum(s.total_new for s in per)

    def test_subset_of_families(self, small_ds):
        solo = aggregate_shift(small_ds, families=["pandora"])
        direct = weekly_shift(small_ds, "pandora")
        assert solo.total_existing == direct.total_existing

    def test_empty_family_list_raises(self, small_ds):
        with pytest.raises(ValueError):
            aggregate_shift(small_ds, families=[])
