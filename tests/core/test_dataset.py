"""Tests for the columnar dataset container."""

import numpy as np
import pytest

from repro.monitor.schemas import Protocol


class TestAccessors:
    def test_attack_record_fields(self, tiny_ds):
        rec = tiny_ds.attack(0)
        assert rec.ddos_id == 0
        assert rec.family in tiny_ds.families
        assert isinstance(rec.category, Protocol)
        assert rec.end_time >= rec.timestamp
        assert rec.target_ip_str.count(".") == 3

    def test_attack_index_bounds(self, tiny_ds):
        with pytest.raises(IndexError):
            tiny_ds.attack(tiny_ds.n_attacks)
        with pytest.raises(IndexError):
            tiny_ds.attack(-1)

    def test_bot_record(self, tiny_ds):
        rec = tiny_ds.bot(0)
        assert rec.family in tiny_ds.families
        assert -85 <= rec.lat <= 85
        with pytest.raises(IndexError):
            tiny_ds.bot(tiny_ds.bots.n_bots)

    def test_iter_attacks_family_filter(self, tiny_ds):
        fam = tiny_ds.active_families[0]
        records = list(tiny_ds.iter_attacks(fam))
        assert len(records) == tiny_ds.attacks_of(fam).size
        assert all(r.family == fam for r in records)

    def test_family_id_roundtrip(self, tiny_ds):
        for name in tiny_ds.families:
            assert tiny_ds.family_name(tiny_ds.family_id(name)) == name
        with pytest.raises(KeyError):
            tiny_ds.family_id("nonexistent")

    def test_participant_coords_shape(self, tiny_ds):
        lats, lons = tiny_ds.participant_coords(0)
        assert lats.size == lons.size == tiny_ds.magnitude[0]

    def test_target_country_codes(self, tiny_ds):
        codes = tiny_ds.target_country_codes()
        assert codes.size == tiny_ds.n_attacks
        assert all(len(c) == 2 for c in codes[:20])


class TestSubset:
    def test_subset_preserves_rows(self, tiny_ds):
        fam = "dirtjumper"
        idx = tiny_ds.attacks_of(fam)
        sub = tiny_ds.subset(idx)
        assert sub.n_attacks == idx.size
        assert np.all(np.diff(sub.start) >= 0)
        assert np.all(sub.family_idx == tiny_ds.family_id(fam))

    def test_subset_participants_travel(self, tiny_ds):
        idx = tiny_ds.attacks_of("dirtjumper")[:5]
        sub = tiny_ds.subset(idx)
        order = np.argsort(tiny_ds.start[idx], kind="stable")
        for k, i in enumerate(idx[order]):
            assert np.array_equal(sub.participants_of(k), tiny_ds.participants_of(int(i)))

    def test_subset_shares_registries(self, tiny_ds):
        sub = tiny_ds.subset(np.arange(5))
        assert sub.bots is tiny_ds.bots
        assert sub.victims is tiny_ds.victims
