"""Tests for multistage-chain detection (Figs 17-18)."""

import numpy as np
import pytest

from repro.core.consecutive import (
    chain_summary,
    chain_timeline,
    consecutive_gap_cdf,
    detect_chains,
)


@pytest.fixture(scope="module")
def chains(small_ds):
    return detect_chains(small_ds)


class TestDetection:
    def test_chains_well_formed(self, small_ds, chains):
        for chain in chains:
            assert chain.length >= 2
            assert len(chain.gaps) == chain.length - 1
            targets = {int(small_ds.target_idx[i]) for i in chain.attack_indices}
            assert targets == {chain.target_index}
            for gap in chain.gaps:
                assert abs(gap) <= 60.0

    def test_members_ordered(self, small_ds, chains):
        for chain in chains:
            starts = [float(small_ds.start[i]) for i in chain.attack_indices]
            assert starts == sorted(starts)

    def test_staged_chains_recovered(self, small_ds, chains):
        """Staged multistage chains must be detected (possibly extended)."""
        staged = {}
        fam_chain = {}
        for i in np.flatnonzero(small_ds.truth_chain_id >= 0):
            fam = int(small_ds.family_idx[i])
            key = (fam, int(small_ds.truth_chain_id[i]))
            staged.setdefault(key, []).append(int(i))
            fam_chain[key] = fam
        staged = {k: v for k, v in staged.items() if len(v) >= 2}
        detected_sets = [set(c.attack_indices) for c in chains]
        for key, members in staged.items():
            member_set = set(members)
            assert any(member_set <= d for d in detected_sets), (
                f"staged chain {key} with {len(members)} attacks not detected"
            )

    def test_min_length_filter(self, small_ds):
        long_only = detect_chains(small_ds, min_length=4)
        assert all(c.length >= 4 for c in long_only)


class TestSummary:
    def test_summary_consistency(self, small_ds, chains):
        if not chains:
            pytest.skip("no chains at this scale")
        s = chain_summary(small_ds, chains)
        assert s.n_chains == len(chains)
        assert s.longest_chain_length == max(c.length for c in chains)
        assert 0 <= s.under_10s_fraction <= s.under_30s_fraction <= 1

    def test_gap_cdf(self, small_ds, chains):
        if not any(c.gaps for c in chains):
            pytest.skip("no gaps at this scale")
        xs, ps = consecutive_gap_cdf(small_ds, chains)
        assert np.all(xs >= 0)
        assert ps[-1] == pytest.approx(1.0)

    def test_timeline_dots(self, small_ds, chains):
        dots = chain_timeline(small_ds, chains)
        assert len(dots) == sum(c.length for c in chains)
        times = [t for t, *_ in dots]
        assert times == sorted(times)

    def test_empty_dataset_raises(self, small_ds):
        sub = small_ds.subset(np.array([0, 1]))
        empty_chains = detect_chains(sub)
        if not empty_chains:
            with pytest.raises(ValueError):
                chain_summary(sub, empty_chains)
