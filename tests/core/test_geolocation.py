"""Tests for the dispersion analyses (Figs 9-11)."""

import numpy as np
import pytest

from repro.core.geolocation import (
    SYMMETRY_TOLERANCE_KM,
    attack_dispersions,
    dispersion_cdf,
    dispersion_histogram,
    dispersion_profile,
)
from repro.geo.haversine import dispersion_km


class TestAttackDispersions:
    def test_alignment_and_order(self, small_ds):
        times, values = attack_dispersions(small_ds, "pandora")
        assert times.size == values.size == small_ds.attacks_of("pandora").size
        assert np.all(np.diff(times) >= 0)
        assert np.all(values >= 0)

    def test_matches_scalar_reference(self, small_ds):
        """The vectorised computation must agree with the scalar one."""
        idx = small_ds.attacks_of("pandora")
        _times, values = attack_dispersions(small_ds, "pandora")
        for k in (0, idx.size // 2, idx.size - 1):
            lats, lons = small_ds.participant_coords(int(idx[k]))
            expected = dispersion_km(lats, lons)
            assert values[k] == pytest.approx(expected, abs=1e-6)

    def test_no_attacks_raises(self, small_ds):
        with pytest.raises(ValueError):
            attack_dispersions(small_ds, "zemra")

    def test_symmetric_truth_has_low_dispersion(self, small_ds):
        """Staged-symmetric attacks must measure below the tolerance."""
        idx = small_ds.attacks_of("pandora")
        _times, values = attack_dispersions(small_ds, "pandora")
        sym = small_ds.truth_symmetric[idx]
        if sym.any():
            assert np.median(values[sym]) < SYMMETRY_TOLERANCE_KM


class TestSnapshotDispersions:
    def test_aligned_and_nonnegative(self, small_ds):
        from repro.core.geolocation import snapshot_dispersions

        times, values = snapshot_dispersions(small_ds, "pandora")
        assert times.size == values.size
        assert times.size > 0
        assert np.all(np.diff(times) > 0)
        assert np.all(values >= 0)

    def test_no_attacks_raises(self, small_ds):
        from repro.core.geolocation import snapshot_dispersions

        with pytest.raises(ValueError):
            snapshot_dispersions(small_ds, "zemra")


class TestProfile:
    def test_fields_consistent(self, small_ds):
        p = dispersion_profile(small_ds, "pandora")
        assert 0 <= p.symmetric_fraction <= 1
        assert p.n_attacks == small_ds.attacks_of("pandora").size
        if p.symmetric_fraction < 1.0:
            assert p.asymmetric_mean_km >= SYMMETRY_TOLERANCE_KM

    def test_tolerance_monotone(self, small_ds):
        loose = dispersion_profile(small_ds, "pandora", tolerance_km=500.0)
        tight = dispersion_profile(small_ds, "pandora", tolerance_km=50.0)
        assert loose.symmetric_fraction >= tight.symmetric_fraction


class TestCdfHistogram:
    def test_cdf(self, small_ds):
        xs, ps = dispersion_cdf(small_ds, "dirtjumper")
        assert ps[-1] == pytest.approx(1.0)

    def test_histogram_excludes_symmetric(self, small_ds):
        edges, counts = dispersion_histogram(small_ds, "dirtjumper", bin_km=500.0)
        _times, values = attack_dispersions(small_ds, "dirtjumper")
        n_asym = int(np.sum(values >= SYMMETRY_TOLERANCE_KM))
        assert counts.sum() == n_asym
        if edges.size:
            assert np.all(np.diff(edges) == 500.0)

    def test_bad_bin_raises(self, small_ds):
        with pytest.raises(ValueError):
            dispersion_histogram(small_ds, "pandora", bin_km=0.0)
