"""Tests for shared statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import ecdf, ecdf_at, summarize

values_st = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestEcdf:
    def test_basic(self):
        xs, ps = ecdf([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ps.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])

    @given(values_st)
    @settings(max_examples=100)
    def test_monotone_and_bounded(self, values):
        xs, ps = ecdf(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == pytest.approx(1.0)
        assert ps[0] > 0

    @given(values_st)
    @settings(max_examples=100)
    def test_ecdf_at_consistent(self, values):
        xs, ps = ecdf(values)
        at = ecdf_at(values, xs)
        # At duplicated values the step function takes the rightmost
        # (largest) probability of the duplicate run.
        expected = {}
        for x, p in zip(xs, ps):
            expected[float(x)] = max(expected.get(float(x), 0.0), float(p))
        assert np.allclose(at, [expected[float(x)] for x in xs])

    def test_ecdf_at_extremes(self):
        assert ecdf_at([1.0, 2.0], [0.0])[0] == 0.0
        assert ecdf_at([1.0, 2.0], [5.0])[0] == 1.0


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(values_st)
    @settings(max_examples=100)
    def test_bounds(self, values):
        s = summarize(values)
        eps = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))  # float summation slack
        assert s.minimum - eps <= s.median <= s.maximum + eps
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.minimum - eps <= s.p80 <= s.maximum + eps
        assert s.std >= 0
