"""Tests for campaign (repeat-round) analysis."""

import numpy as np
import pytest

from repro.core.campaigns import campaign_summary, detect_campaigns


class TestDetect:
    def test_campaigns_well_formed(self, small_ds):
        campaigns = detect_campaigns(small_ds)
        assert campaigns
        for campaign in campaigns:
            assert campaign.rounds >= 2
            targets = {int(small_ds.target_idx[i]) for i in campaign.attack_indices}
            assert targets == {campaign.target_index}
            starts = [float(small_ds.start[i]) for i in campaign.attack_indices]
            assert starts == sorted(starts)
            assert max(np.diff(starts), default=0) <= 6 * 3600.0

    def test_gap_monotonicity(self, small_ds):
        tight = detect_campaigns(small_ds, round_gap=600.0)
        loose = detect_campaigns(small_ds, round_gap=24 * 3600.0)
        tight_attacks = sum(c.rounds for c in tight)
        loose_attacks = sum(c.rounds for c in loose)
        assert loose_attacks >= tight_attacks

    def test_min_rounds(self, small_ds):
        big = detect_campaigns(small_ds, min_rounds=4)
        assert all(c.rounds >= 4 for c in big)

    def test_validation(self, small_ds):
        with pytest.raises(ValueError):
            detect_campaigns(small_ds, round_gap=0)
        with pytest.raises(ValueError):
            detect_campaigns(small_ds, min_rounds=0)


class TestSummary:
    def test_summary_consistency(self, small_ds):
        campaigns = detect_campaigns(small_ds)
        s = campaign_summary(small_ds, campaigns)
        assert s.n_campaigns == len(campaigns)
        assert s.max_rounds >= s.mean_rounds >= 2
        assert 0 <= s.multi_family_fraction <= 1
        assert 0 < s.attacks_in_campaigns_fraction <= 1

    def test_repeat_rounds_exist(self, small_ds):
        # §III-D: targets see multiple rounds within hours.
        s = campaign_summary(small_ds)
        assert s.n_targets_hit_repeatedly >= 10
        assert s.median_span_hours < 48
