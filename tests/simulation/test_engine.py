"""Tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import SimulationEngine, SimulationError
from repro.simulation.events import Event, EventKind


class TestOrdering:
    def test_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.on_any(lambda e: seen.append(e.payload))
        engine.schedule(3.0, EventKind.ATTACK_PULSE, "c")
        engine.schedule(1.0, EventKind.ATTACK_PULSE, "a")
        engine.schedule(2.0, EventKind.ATTACK_PULSE, "b")
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_kind_breaks_time_ties(self):
        engine = SimulationEngine()
        seen = []
        engine.on_any(lambda e: seen.append(e.kind))
        engine.schedule(1.0, EventKind.SNAPSHOT, None)
        engine.schedule(1.0, EventKind.RECRUIT, None)
        engine.schedule(1.0, EventKind.ATTACK_PULSE, None)
        engine.run()
        assert seen == [EventKind.RECRUIT, EventKind.ATTACK_PULSE, EventKind.SNAPSHOT]

    def test_seq_breaks_full_ties(self):
        engine = SimulationEngine()
        seen = []
        engine.on_any(lambda e: seen.append(e.payload))
        for i in range(5):
            engine.schedule(1.0, EventKind.ATTACK_PULSE, i)
        engine.run()
        assert seen == [0, 1, 2, 3, 4]


class TestHandlers:
    def test_kind_handlers_before_global(self):
        engine = SimulationEngine()
        order = []
        engine.on(EventKind.RECRUIT, lambda e: order.append("kind"))
        engine.on_any(lambda e: order.append("any"))
        engine.schedule(0.0, EventKind.RECRUIT, None)
        engine.run()
        assert order == ["kind", "any"]

    def test_handler_can_schedule_future(self):
        engine = SimulationEngine()
        seen = []

        def chain(event: Event) -> None:
            seen.append(event.time)
            if event.time < 3:
                engine.schedule(event.time + 1, EventKind.RECRUIT, None)

        engine.on(EventKind.RECRUIT, chain)
        engine.schedule(0.0, EventKind.RECRUIT, None)
        engine.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_scheduling_into_past_rejected(self):
        engine = SimulationEngine()

        def bad(event: Event) -> None:
            engine.schedule(event.time - 10, EventKind.RECRUIT, None)

        engine.on(EventKind.RECRUIT, bad)
        engine.schedule(5.0, EventKind.RECRUIT, None)
        with pytest.raises(SimulationError):
            engine.run()


class TestRunControl:
    def test_run_until(self):
        engine = SimulationEngine()
        seen = []
        engine.on_any(lambda e: seen.append(e.time))
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, EventKind.RECRUIT, None)
        delivered = engine.run(until=2.0)
        assert delivered == 2
        assert engine.pending == 1
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_max_events(self):
        engine = SimulationEngine()
        for t in range(10):
            engine.schedule(float(t), EventKind.RECRUIT, None)
        assert engine.run(max_events=4) == 4
        assert engine.pending == 6

    def test_step_empty_returns_none(self):
        assert SimulationEngine().step() is None

    def test_counters(self):
        engine = SimulationEngine()
        engine.schedule(1.0, EventKind.RECRUIT, None)
        engine.schedule(2.0, EventKind.RECRUIT, None)
        engine.run()
        assert engine.processed == 2
        assert engine.now == 2.0
