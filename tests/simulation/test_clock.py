"""Tests for the observation-window time base."""

import pytest

from repro.simulation.clock import (
    OBSERVATION_DAYS,
    OBSERVATION_END,
    OBSERVATION_START,
    SECONDS_PER_DAY,
    ObservationWindow,
    from_datetime,
    to_datetime,
)


class TestConstants:
    def test_window_matches_paper(self):
        # 2012-08-29 .. 2013-03-24: 207 days (§II-B).
        assert OBSERVATION_DAYS == 207
        assert OBSERVATION_END - OBSERVATION_START == 207 * SECONDS_PER_DAY
        assert to_datetime(OBSERVATION_START).strftime("%Y-%m-%d") == "2012-08-29"
        assert to_datetime(OBSERVATION_END).strftime("%Y-%m-%d") == "2013-03-24"


class TestConversions:
    def test_roundtrip(self):
        dt = to_datetime(OBSERVATION_START + 12345)
        assert from_datetime(dt) == OBSERVATION_START + 12345

    def test_naive_datetime_is_utc(self):
        from datetime import datetime

        naive = datetime(2012, 8, 29)
        assert from_datetime(naive) == OBSERVATION_START


class TestObservationWindow:
    def test_defaults(self):
        w = ObservationWindow()
        assert w.n_days == 207
        assert w.n_weeks == 30
        assert w.n_hours == 207 * 24

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObservationWindow(start=10, end=10)

    def test_indices(self):
        w = ObservationWindow()
        assert w.day_index(w.start) == 0
        assert w.day_index(w.start + SECONDS_PER_DAY) == 1
        assert w.week_index(w.start + 8 * SECONDS_PER_DAY) == 1
        assert w.hour_index(w.start + 3600) == 1

    def test_contains_and_clamp(self):
        w = ObservationWindow()
        assert w.contains(w.start)
        assert not w.contains(w.end)
        assert w.clamp(w.end + 100) == w.end - 1
        assert w.clamp(w.start - 100) == w.start

    def test_day_label(self):
        w = ObservationWindow()
        assert w.day_label(0) == "2012-08-29"
        assert w.day_label(1) == "2012-08-30"

    def test_subwindow(self):
        w = ObservationWindow()
        sub = w.subwindow(0.0, 0.5)
        assert sub.start == w.start
        assert sub.duration == pytest.approx(w.duration / 2, abs=1)
        with pytest.raises(ValueError):
            w.subwindow(0.5, 0.5)
        with pytest.raises(ValueError):
            w.subwindow(-0.1, 0.5)

    def test_starts(self):
        w = ObservationWindow()
        assert w.day_start(2) - w.day_start(1) == SECONDS_PER_DAY
        assert w.week_start(1) - w.week_start(0) == 7 * SECONDS_PER_DAY
        assert w.hour_start(5) == w.start + 5 * 3600
