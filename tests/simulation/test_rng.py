"""Tests for deterministic seed streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.rng import SeededStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_name_sensitivity(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_seed_sensitivity(self):
        assert derive_seed(42, "alpha") != derive_seed(43, "alpha")

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=40))
    def test_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64

    def test_non_int_seed_rejected(self):
        import pytest

        with pytest.raises(TypeError):
            derive_seed("7", "x")  # type: ignore[arg-type]


class TestSeededStreams:
    def test_caching(self):
        streams = SeededStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_independence(self):
        streams = SeededStreams(1)
        a_first = streams.stream("a").random(3).tolist()
        streams.stream("b").random(1000)  # drain another stream
        fresh = SeededStreams(1)
        assert fresh.stream("a").random(3).tolist() == a_first

    def test_fresh_replays(self):
        streams = SeededStreams(1)
        first = streams.stream("x").random(4).tolist()
        replay = streams.fresh("x").random(4).tolist()
        assert first == replay

    def test_spawn_namespacing(self):
        parent = SeededStreams(9)
        child = parent.spawn("sub")
        direct = SeededStreams(9).stream("sub.leaf").random(4).tolist()
        assert child.stream("leaf").random(4).tolist() == direct

    def test_spawn_nested(self):
        parent = SeededStreams(9)
        deep = parent.spawn("a").spawn("b")
        direct = SeededStreams(9).stream("a.b.c").random(2).tolist()
        assert deep.stream("c").random(2).tolist() == direct

    def test_names_listing(self):
        streams = SeededStreams(1)
        streams.stream("z")
        streams.stream("a")
        assert streams.names() == ["a", "z"]

    def test_master_seed_property(self):
        assert SeededStreams(17).master_seed == 17
        assert SeededStreams(17).spawn("x").master_seed == 17
