"""Tests for the ``repro.errors`` taxonomy and its facade guarantees.

Two contracts matter: every library failure is catchable as
:class:`repro.errors.ReproError`, and the re-parenting kept the builtin
bases (``FormatError`` is still a ``ValueError``) so pre-taxonomy
callers that catch ``ValueError`` keep working.
"""

import pytest

from repro import api, errors


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (errors.FormatError, errors.ShardLayoutError, errors.IngestError):
            assert issubclass(cls, errors.ReproError)

    def test_builtin_bases_preserved(self):
        for cls in (errors.FormatError, errors.ShardLayoutError, errors.IngestError):
            assert issubclass(cls, ValueError)

    def test_serve_errors_join_the_taxonomy(self):
        from repro.serve import BackpressureError, NotFoundError, ServeError

        assert issubclass(ServeError, errors.ReproError)
        assert issubclass(NotFoundError, ServeError)
        assert issubclass(BackpressureError, ServeError)

    def test_stream_reexports_ingest_error(self):
        from repro.stream import IngestError as stream_ingest_error

        assert stream_ingest_error is errors.IngestError

    def test_colstore_error_is_a_format_error(self):
        from repro.io.colstore import ColstoreError

        assert issubclass(ColstoreError, errors.FormatError)


class TestRaisedTypes:
    def test_load_unknown_extension_is_format_error(self, tmp_path):
        with pytest.raises(errors.FormatError, match="cannot infer format"):
            api.load(tmp_path / "attacks.xyz")

    def test_load_resharding_store_is_shard_layout_error(self, tiny_ds, tmp_path):
        from repro.io.colstore import save_sharded_npz

        path = save_sharded_npz(tiny_ds, tmp_path / "store", shards=2)
        with pytest.raises(errors.ShardLayoutError, match="already a sharded store"):
            api.load(path, shards=4)

    def test_open_unloadable_source_is_format_error(self):
        with pytest.raises(errors.FormatError, match="cannot open"):
            api.open(3.14)

    def test_context_unknown_type_is_format_error(self):
        with pytest.raises(errors.FormatError, match="cannot build an analysis context"):
            api.context(42)

    def test_empty_ingest_is_ingest_error(self):
        with pytest.raises(errors.IngestError, match="no records to ingest"):
            api.ingest([])

    def test_ingest_error_carries_the_record_index(self, tiny_ds):
        import dataclasses

        record = next(iter(tiny_ds.iter_attacks()))
        bad = dataclasses.replace(record, end_time=record.timestamp - 1.0)
        stream = api.stream()
        with pytest.raises(errors.IngestError, match="record #0") as excinfo:
            stream.append_batch([bad])
        assert excinfo.value.index == 0

    def test_all_raised_errors_catchable_as_repro_error(self, tmp_path):
        with pytest.raises(errors.ReproError):
            api.load(tmp_path / "attacks.xyz")
        with pytest.raises(errors.ReproError):
            api.ingest([])


class TestHTTPMapping:
    def test_status_codes(self):
        from repro.serve.errors import (
            BackpressureError,
            ConflictError,
            MethodNotAllowedError,
            NotFoundError,
            http_status,
        )

        assert http_status(errors.FormatError("x")) == 400
        assert http_status(errors.ShardLayoutError("x")) == 409
        assert http_status(errors.IngestError("x")) == 422
        assert http_status(NotFoundError("x")) == 404
        assert http_status(MethodNotAllowedError("x")) == 405
        assert http_status(ConflictError("x")) == 409
        assert http_status(BackpressureError("x")) == 429
        assert http_status(errors.ReproError("x")) == 500
        assert http_status(RuntimeError("x")) == 500

    def test_error_payload_shape(self):
        from repro.serve.errors import error_payload

        payload = error_payload(errors.FormatError("bad row"))
        assert payload == {"error": "FormatError", "detail": "bad row"}

    def test_backpressure_carries_retry_after(self):
        from repro.serve.errors import BackpressureError

        exc = BackpressureError("full", retry_after=2.5)
        assert exc.retry_after == 2.5
