"""Tests for ingesting external Table I logs."""

import numpy as np
import pytest

from repro.core.collaboration import detect_collaborations
from repro.core.consecutive import detect_chains
from repro.core.durations import duration_summary
from repro.core.intervals import interval_summary
from repro.core.overview import daily_attack_counts, protocol_breakdown
from repro.core.targets import country_breakdown
from repro.io.ingest import IngestError, dataset_from_records


@pytest.fixture(scope="module")
def ingested(small_ds):
    """Round-trip: synthetic dataset -> records -> ingested dataset."""
    records = list(small_ds.iter_attacks())
    return dataset_from_records(records, window=small_ds.window)


class TestRoundTrip:
    def test_attack_table_preserved(self, small_ds, ingested):
        assert ingested.n_attacks == small_ds.n_attacks
        assert np.allclose(np.sort(ingested.start), np.sort(small_ds.start))
        assert np.allclose(
            np.sort(ingested.durations), np.sort(small_ds.durations), atol=0.01
        )

    def test_attack_level_analyses_agree(self, small_ds, ingested):
        orig = interval_summary(small_ds)
        new = interval_summary(ingested)
        assert new.stats.mean == pytest.approx(orig.stats.mean, rel=1e-6)
        assert duration_summary(ingested).stats.median == pytest.approx(
            duration_summary(small_ds).stats.median
        )

    def test_protocols_preserved(self, small_ds, ingested):
        orig = {(p, f): c for p, f, c in protocol_breakdown(small_ds)}
        new = {(p, f): c for p, f, c in protocol_breakdown(ingested)}
        assert orig == new

    def test_country_analysis_works(self, small_ds, ingested):
        orig = country_breakdown(small_ds, "dirtjumper")
        new = country_breakdown(ingested, "dirtjumper")
        assert new.n_countries == orig.n_countries
        assert new.top[0] == orig.top[0]

    def test_collaboration_detection_agrees(self, small_ds, ingested):
        orig = detect_collaborations(small_ds)
        new = detect_collaborations(ingested)
        assert len(new) == len(orig)
        assert sum(e.is_inter_family for e in new) == sum(
            e.is_inter_family for e in orig
        )

    def test_chain_detection_agrees(self, small_ds, ingested):
        assert len(detect_chains(ingested)) == len(detect_chains(small_ds))

    def test_daily_counts_agree(self, small_ds, ingested):
        assert np.array_equal(
            daily_attack_counts(ingested).counts, daily_attack_counts(small_ds).counts
        )


class TestStructure:
    def test_no_bot_side(self, ingested):
        assert ingested.bots.n_bots == 0
        assert ingested.participants.size == 0
        assert ingested.participants_of(0).size == 0

    def test_default_window_inferred(self, small_ds):
        records = list(small_ds.iter_attacks())[:50]
        ds = dataset_from_records(records)
        assert ds.window.start <= min(r.timestamp for r in records)
        assert ds.window.end > max(r.timestamp for r in records)

    def test_world_reconstructed(self, small_ds, ingested):
        codes = {c.code for c in ingested.world.countries}
        assert "RU" in codes
        rec = ingested.attack(0)
        assert rec.country_code in codes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_records([])

    def test_negative_duration_rejected(self, small_ds):
        bad = small_ds.attack(0)
        import dataclasses

        with pytest.raises(ValueError):
            dataset_from_records(
                [dataclasses.replace(bad, end_time=bad.timestamp - 10)]
            )

    def test_generator_input(self, small_ds):
        ds = dataset_from_records(
            (r for r in small_ds.iter_attacks()), window=small_ds.window
        )
        assert ds.n_attacks == small_ds.n_attacks

    def test_ingest_error_carries_index(self, small_ds):
        import dataclasses

        records = list(small_ds.iter_attacks())[:10]
        records[7] = dataclasses.replace(
            records[7], end_time=records[7].timestamp - 10
        )
        with pytest.raises(IngestError) as exc_info:
            dataset_from_records(records)
        assert exc_info.value.index == 7
        assert "record #7" in str(exc_info.value)

    def test_non_strict_drops_malformed(self, small_ds):
        import dataclasses

        records = list(small_ds.iter_attacks())[:10]
        records[2] = dataclasses.replace(
            records[2], end_time=records[2].timestamp - 10
        )
        ds = dataset_from_records(records, strict=False)
        assert ds.n_attacks == 9

    def test_non_strict_all_dropped_still_rejected(self, small_ds):
        import dataclasses

        rec = small_ds.attack(0)
        bad = dataclasses.replace(rec, end_time=rec.timestamp - 10)
        with pytest.raises(IngestError, match="no records"):
            dataset_from_records([bad], strict=False)
