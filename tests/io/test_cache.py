"""Tests for dataset caching."""

import numpy as np
import pytest

from repro.datagen.config import DatasetConfig
from repro.io.cache import config_key, load_dataset, load_or_generate, save_dataset


class TestConfigKey:
    def test_stable(self):
        assert config_key(DatasetConfig.tiny()) == config_key(DatasetConfig.tiny())

    def test_seed_sensitivity(self):
        assert config_key(DatasetConfig.tiny(seed=1)) != config_key(DatasetConfig.tiny(seed=2))

    def test_scale_sensitivity(self):
        assert config_key(DatasetConfig.tiny()) != config_key(DatasetConfig.small())


class TestSaveLoad:
    def test_roundtrip(self, tiny_ds, tmp_path):
        path = save_dataset(tiny_ds, tmp_path / "ds.pkl.gz")
        loaded = load_dataset(path)
        assert loaded.n_attacks == tiny_ds.n_attacks
        assert np.array_equal(loaded.start, tiny_ds.start)
        assert np.array_equal(loaded.participants, tiny_ds.participants)

    def test_load_missing(self, tmp_path):
        with pytest.raises(OSError):
            load_dataset(tmp_path / "missing.pkl.gz")


class TestLoadOrGenerate:
    def test_generates_then_caches(self, tmp_path):
        config = DatasetConfig.tiny(seed=41)
        first = load_or_generate(config, tmp_path)
        files = list(tmp_path.glob("dataset-*.pkl.gz"))
        assert len(files) == 1
        second = load_or_generate(config, tmp_path)
        assert np.array_equal(first.start, second.start)

    def test_corrupt_cache_regenerated(self, tmp_path):
        config = DatasetConfig.tiny(seed=43)
        load_or_generate(config, tmp_path)
        path = next(tmp_path.glob("dataset-*.pkl.gz"))
        path.write_bytes(b"garbage")
        ds = load_or_generate(config, tmp_path)
        assert ds.n_attacks > 0
