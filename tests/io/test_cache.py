"""Tests for dataset caching."""

from pathlib import Path

import numpy as np
import pytest

from repro.datagen.config import DatasetConfig
from repro.io.cache import (
    config_key,
    load_context_views,
    load_dataset,
    load_or_generate,
    load_or_generate_context,
    resolve_cache_dir,
    save_context_views,
    save_dataset,
)


class TestConfigKey:
    def test_stable(self):
        assert config_key(DatasetConfig.tiny()) == config_key(DatasetConfig.tiny())

    def test_seed_sensitivity(self):
        assert config_key(DatasetConfig.tiny(seed=1)) != config_key(DatasetConfig.tiny(seed=2))

    def test_scale_sensitivity(self):
        assert config_key(DatasetConfig.tiny()) != config_key(DatasetConfig.small())


class TestSaveLoad:
    def test_roundtrip(self, tiny_ds, tmp_path):
        path = save_dataset(tiny_ds, tmp_path / "ds.pkl.gz")
        loaded = load_dataset(path)
        assert loaded.n_attacks == tiny_ds.n_attacks
        assert np.array_equal(loaded.start, tiny_ds.start)
        assert np.array_equal(loaded.participants, tiny_ds.participants)

    def test_load_missing(self, tmp_path):
        with pytest.raises(OSError):
            load_dataset(tmp_path / "missing.pkl.gz")


class TestLoadOrGenerate:
    def test_generates_then_caches(self, tmp_path):
        config = DatasetConfig.tiny(seed=41)
        first = load_or_generate(config, tmp_path)
        files = list(tmp_path.glob("dataset-*.npz"))
        assert len(files) == 1
        second = load_or_generate(config, tmp_path)
        assert np.array_equal(first.start, second.start)

    def test_corrupt_cache_regenerated(self, tmp_path):
        config = DatasetConfig.tiny(seed=43)
        load_or_generate(config, tmp_path)
        path = next(tmp_path.glob("dataset-*.npz"))
        path.write_bytes(b"garbage")
        ds = load_or_generate(config, tmp_path)
        assert ds.n_attacks > 0


class TestCacheDirResolution:
    def test_explicit_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"

    def test_env_var_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir() == Path(".repro-cache")

    def test_load_or_generate_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        config = DatasetConfig.tiny(seed=47)
        load_or_generate(config)
        assert list((tmp_path / "env").glob("dataset-*.npz"))


class TestContextViewSnapshots:
    def test_roundtrip(self, tmp_path):
        config = DatasetConfig.tiny(seed=48)
        ctx = load_or_generate_context(config, tmp_path)
        ctx.attack_intervals()
        ctx.collaborations()
        save_context_views(ctx, config, tmp_path)

        warm = load_or_generate_context(config, tmp_path)
        assert warm is not ctx  # separate object, same dataset bytes
        assert warm.n_views >= 2
        assert np.array_equal(warm.attack_intervals(), ctx.attack_intervals())
        assert warm.collaborations() == ctx.collaborations()

    def test_wrong_key_rejected(self, tmp_path):
        config = DatasetConfig.tiny(seed=48)
        ctx = load_or_generate_context(config, tmp_path)
        ctx.attack_intervals()
        path = save_context_views(ctx, config, tmp_path)
        with pytest.raises(ValueError):
            load_context_views(path, "deadbeefdeadbeef")

    def test_corrupt_snapshot_discarded(self, tmp_path):
        config = DatasetConfig.tiny(seed=48)
        ctx = load_or_generate_context(config, tmp_path)
        ctx.attack_intervals()
        path = save_context_views(ctx, config, tmp_path)
        path.write_bytes(b"garbage")
        warm = load_or_generate_context(config, tmp_path)
        assert warm.n_views == 0
        assert not path.exists()

    def test_sharded_snapshot_rejected_on_flat_load(self, tmp_path):
        """Views built under a sharding never restore against the flat path."""
        from repro.core.context import ShardedAnalysisContext
        from repro.io.colstore import ShardedDatasetStore

        config = DatasetConfig.tiny(seed=48)
        ds = load_or_generate_context(config, tmp_path).dataset
        store = ShardedDatasetStore.partition(ds, shards=2)
        sctx = ShardedAnalysisContext(store)
        sctx.build(jobs=1)
        path = save_context_views(sctx.merged(), config, tmp_path, shard_layout=store.layout_key())
        with pytest.raises(ValueError, match="shard layout"):
            load_context_views(path, config_key(config))
        # load_or_generate_context treats it as a miss and discards it
        warm = load_or_generate_context(config, tmp_path)
        assert warm.n_views == 0
        assert not path.exists()

    def test_snapshot_keyed_by_shard_count_and_edges(self, tmp_path):
        from repro.core.context import ShardedAnalysisContext
        from repro.io.colstore import ShardedDatasetStore

        config = DatasetConfig.tiny(seed=48)
        ds = load_or_generate_context(config, tmp_path).dataset
        two = ShardedDatasetStore.partition(ds, shards=2)
        four = ShardedDatasetStore.partition(ds, shards=4)
        sctx = ShardedAnalysisContext(two)
        sctx.build(jobs=1)
        path = save_context_views(sctx.merged(), config, tmp_path, shard_layout=two.layout_key())
        # same layout restores; any other sharding is rejected
        assert load_context_views(path, config_key(config), two.layout_key())
        with pytest.raises(ValueError, match="shard layout"):
            load_context_views(path, config_key(config), four.layout_key())


class TestMergeCache:
    def _cache(self, tmp_path):
        from repro.io.cache import MergeCache

        return MergeCache(tmp_path)

    def test_roundtrip(self, tmp_path):
        cache = self._cache(tmp_path)
        fp = ((0.0, 86400.0), ((10, 1.0, 2.0, 3.0),))
        cache.save("partial", fp, {"value": 42})
        assert cache.load("partial", fp) == {"value": 42}

    def test_miss_on_unknown_fingerprint(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.load("partial", ((0.0, 1.0), ())) is None

    def test_corrupt_entry_is_a_silent_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        fp = ((0.0, 86400.0), ((10, 1.0, 2.0, 3.0),))
        path = cache.save("partial", fp, [1, 2, 3])
        path.write_bytes(b"garbage")
        assert cache.load("partial", fp) is None

    def test_version_skew_is_a_silent_miss(self, tmp_path, monkeypatch):
        from repro.io import cache as cache_mod

        cache = self._cache(tmp_path)
        fp = ((0.0, 86400.0), ((10, 1.0, 2.0, 3.0),))
        cache.save("partial", fp, "payload")
        monkeypatch.setattr(cache_mod, "_MERGE_FORMAT_VERSION", 999)
        # the version participates in the filename hash, so a bumped
        # format simply never finds the old entry
        assert cache.load("partial", fp) is None

    def test_fingerprint_collision_rejected(self, tmp_path):
        # A file renamed (or hashed) onto another key must not serve:
        # the stored fingerprint is re-verified on load.
        cache = self._cache(tmp_path)
        fp_a = ((0.0, 1.0), ((1, 0.0, 0.0, 0.0),))
        fp_b = ((0.0, 1.0), ((2, 0.0, 0.0, 0.0),))
        path_a = cache.save("partial", fp_a, "A")
        path_b = cache._path("partial", fp_b)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(path_a.read_bytes())
        assert cache.load("partial", fp_b) is None
