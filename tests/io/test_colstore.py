"""Colstore round-trips: generated and ingested datasets, mmap and buffered."""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.io import colstore
from repro.io.colstore import ColstoreError, load_dataset_npz, save_dataset_npz
from repro.io.ingest import dataset_from_records

from ..datagen.test_parallel import assert_identical


@pytest.fixture()
def archive(tiny_ds, tmp_path):
    return save_dataset_npz(tiny_ds, tmp_path / "ds.npz")


def test_round_trip_mmap(tiny_ds, archive):
    loaded = load_dataset_npz(archive)
    assert_identical(tiny_ds, loaded)
    # scalar state survives too
    assert loaded.window == tiny_ds.window
    assert loaded.families == tiny_ds.families
    assert loaded.active_families == tiny_ds.active_families
    assert loaded.world.countries == tiny_ds.world.countries
    assert loaded.world.cities == tiny_ds.world.cities
    assert loaded.world.organizations == tiny_ds.world.organizations
    # the rebuilt world serves the same per-country lookups
    c0 = tiny_ds.world.countries[0]
    assert loaded.world.cities_of(c0.index) == tiny_ds.world.cities_of(c0.index)
    assert (
        loaded.world.organizations_of(c0.index)
        == tiny_ds.world.organizations_of(c0.index)
    )


def test_round_trip_buffered(tiny_ds, archive):
    loaded = load_dataset_npz(archive, mmap=False)
    assert_identical(tiny_ds, loaded)


def test_mmap_load_is_memory_mapped(archive):
    obs.reset()
    loaded = load_dataset_npz(archive)
    assert isinstance(loaded.start, np.memmap)
    assert obs.registry().counter("colstore.loads", mmap="true").value == 1
    obs.reset()


def test_round_trip_ingested_dataset(tiny_ds, tmp_path):
    """Attack-table-only datasets (empty registries) round-trip as well."""
    ingested = dataset_from_records(tiny_ds.iter_attacks(), window=tiny_ds.window)
    path = save_dataset_npz(ingested, tmp_path / "ingested.npz")
    loaded = load_dataset_npz(path)
    assert loaded.attack_columns_equal(ingested)
    assert loaded.bots.ip.size == ingested.bots.ip.size == 0


def test_not_an_archive_raises(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not a zip archive at all")
    with pytest.raises(ColstoreError):
        load_dataset_npz(path)


def test_version_mismatch_raises(tiny_ds, tmp_path, monkeypatch):
    monkeypatch.setattr(colstore, "COLSTORE_VERSION", 999)
    path = save_dataset_npz(tiny_ds, tmp_path / "future.npz")
    monkeypatch.undo()
    with pytest.raises(ColstoreError, match="version"):
        load_dataset_npz(path)


def test_truncated_archive_raises(tiny_ds, archive):
    data = archive.read_bytes()
    archive.write_bytes(data[: len(data) // 2])
    with pytest.raises(ColstoreError):
        load_dataset_npz(archive)
