"""Tests for JSONL export/import."""

import pytest

from repro.io.jsonlio import export_attacks_jsonl, read_attacks_jsonl


class TestJsonl:
    def test_roundtrip(self, tiny_ds, tmp_path):
        path = tmp_path / "attacks.jsonl"
        n = export_attacks_jsonl(tiny_ds, path)
        records = read_attacks_jsonl(path)
        assert len(records) == n == tiny_ds.n_attacks
        mid = n // 2
        orig = tiny_ds.attack(mid)
        loaded = records[mid]
        assert loaded.botnet_id == orig.botnet_id
        assert loaded.family == orig.family
        assert loaded.target_ip == orig.target_ip
        assert loaded.end_time == pytest.approx(orig.end_time)

    def test_blank_lines_skipped(self, tiny_ds, tmp_path):
        path = tmp_path / "attacks.jsonl"
        export_attacks_jsonl(tiny_ds, path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(read_attacks_jsonl(path)) == tiny_ds.n_attacks

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_attacks_jsonl(path)
