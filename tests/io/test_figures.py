"""Tests for the figure-series CSV exporters."""

import csv

import pytest

from repro.io.figures import FIGURE_EXPORTERS, export_figure_data


class TestExport:
    def test_all_figures_written(self, small_ds, tmp_path):
        counts = export_figure_data(small_ds, tmp_path)
        assert set(counts) == set(FIGURE_EXPORTERS)
        files = list(tmp_path.glob("*.csv"))
        assert len(files) == len(FIGURE_EXPORTERS)
        for path in files:
            with path.open() as fh:
                header = next(csv.reader(fh))
            assert header, path.name

    def test_row_counts_sane(self, small_ds, tmp_path):
        counts = export_figure_data(small_ds, tmp_path)
        assert counts["fig2"] == small_ds.window.n_days
        assert counts["fig3"] == small_ds.n_attacks - 1
        assert counts["fig6"] == small_ds.n_attacks
        assert counts["fig7"] == small_ds.n_attacks

    def test_only_filter(self, small_ds, tmp_path):
        counts = export_figure_data(small_ds, tmp_path, only=["fig2", "fig7"])
        assert set(counts) == {"fig2", "fig7"}
        assert len(list(tmp_path.glob("*.csv"))) == 2

    def test_unknown_figure_id(self, small_ds, tmp_path):
        with pytest.raises(KeyError):
            export_figure_data(small_ds, tmp_path, only=["fig99"])

    def test_fig5_per_family(self, small_ds, tmp_path):
        export_figure_data(small_ds, tmp_path, only=["fig5"])
        with (tmp_path / "fig5_family_interval_cdf.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        families = {row["family"] for row in rows}
        assert "dirtjumper" in families
