"""Tests for CSV schema export/import."""

import pytest

from repro.io.csvio import (
    ATTACK_FIELDS,
    export_attacks_csv,
    export_botlist_csv,
    export_botnetlist_csv,
    read_attacks_csv,
)


class TestAttacksCsv:
    def test_roundtrip(self, tiny_ds, tmp_path):
        path = tmp_path / "attacks.csv"
        n = export_attacks_csv(tiny_ds, path)
        assert n == tiny_ds.n_attacks
        records = read_attacks_csv(path)
        assert len(records) == n
        first = records[0]
        orig = tiny_ds.attack(0)
        assert first.ddos_id == orig.ddos_id
        assert first.botnet_id == orig.botnet_id
        assert first.category == orig.category
        assert first.target_ip == orig.target_ip
        assert first.timestamp == pytest.approx(orig.timestamp, abs=0.01)
        assert first.magnitude == orig.magnitude

    def test_header(self, tiny_ds, tmp_path):
        path = tmp_path / "attacks.csv"
        export_attacks_csv(tiny_ds, path)
        header = path.read_text().splitlines()[0].split(",")
        assert header == ATTACK_FIELDS

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ddos_id,botnet_id\n1,2\n")
        with pytest.raises(ValueError):
            read_attacks_csv(path)


class TestOtherSchemas:
    def test_botlist_limit(self, tiny_ds, tmp_path):
        path = tmp_path / "bots.csv"
        n = export_botlist_csv(tiny_ds, path, limit=50)
        assert n == 50
        assert len(path.read_text().splitlines()) == 51

    def test_botlist_full(self, tiny_ds, tmp_path):
        path = tmp_path / "bots.csv"
        n = export_botlist_csv(tiny_ds, path)
        assert n == tiny_ds.bots.n_bots

    def test_botnetlist(self, tiny_ds, tmp_path):
        path = tmp_path / "botnets.csv"
        n = export_botnetlist_csv(tiny_ds, path)
        assert n == len(tiny_ds.botnets)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("botnet_id,family")
