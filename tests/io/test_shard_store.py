"""Sharded store round-trips: partition, manifest, append and spill."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.io import colstore
from repro.io.colstore import (
    ShardedDatasetStore,
    append_shard,
    is_sharded_store,
    save_sharded_npz,
    shard_edges,
)
from repro.stream import StreamingDataset

from ..datagen.test_parallel import assert_identical


@pytest.fixture()
def store_path(tiny_ds, tmp_path):
    return save_sharded_npz(tiny_ds, tmp_path / "store", shards=4)


class TestShardedRoundTrip:
    def test_merged_dataset_identical(self, tiny_ds, store_path):
        merged = ShardedDatasetStore(store_path).merged_dataset()
        assert_identical(tiny_ds, merged)
        assert merged.window == tiny_ds.window
        assert merged.families == tiny_ds.families

    def test_partition_matches_disk(self, tiny_ds, store_path):
        disk = ShardedDatasetStore(store_path)
        mem = ShardedDatasetStore.partition(tiny_ds, shards=4)
        assert disk.n_shards == mem.n_shards == 4
        np.testing.assert_array_equal(disk.edges, mem.edges)
        np.testing.assert_array_equal(disk._counts, mem._counts)
        for k in range(4):
            assert disk.load_shard(k).attack_columns_equal(mem.load_shard(k))

    def test_shards_keep_global_window_and_registries(self, tiny_ds, store_path):
        store = ShardedDatasetStore(store_path)
        bases = store.shard_bases()
        for k in range(store.n_shards):
            shard = store.load_shard(k)
            assert shard.window == tiny_ds.window
            assert shard.bots.ip.size == tiny_ds.bots.ip.size
            lo, hi = int(bases[k]), int(bases[k]) + shard.n_attacks
            np.testing.assert_array_equal(shard.start, tiny_ds.start[lo:hi])

    def test_manifest_contents(self, tiny_ds, store_path):
        manifest = json.loads((store_path / colstore.MANIFEST_NAME).read_text())
        assert manifest["n_shards"] == 4
        assert manifest["n_attacks"] == tiny_ds.n_attacks
        assert sum(e["n_attacks"] for e in manifest["shards"]) == tiny_ds.n_attacks
        for entry in manifest["shards"]:
            assert (store_path / entry["file"]).is_file()
            if entry["n_attacks"]:
                assert entry["t_lo"] <= entry["t_first"] <= entry["t_last"]

    def test_is_sharded_store(self, store_path, tmp_path):
        assert is_sharded_store(store_path)
        assert not is_sharded_store(tmp_path / "nowhere")
        assert not is_sharded_store(tmp_path)  # dir without a manifest

    def test_window_seconds_layout(self, tiny_ds, tmp_path):
        path = save_sharded_npz(tiny_ds, tmp_path / "by-window", window_seconds=30 * 86400)
        store = ShardedDatasetStore(path)
        want = shard_edges(tiny_ds.window, window_seconds=30 * 86400)
        np.testing.assert_array_equal(store.edges, want)
        assert_identical(tiny_ds, store.merged_dataset())

    def test_layout_key_distinguishes_shardings(self, tiny_ds):
        a = ShardedDatasetStore.partition(tiny_ds, shards=2).layout_key()
        b = ShardedDatasetStore.partition(tiny_ds, shards=4).layout_key()
        assert a != b
        assert a != colstore.UNSHARDED_LAYOUT


class TestMmapGauge:
    def test_gauge_tracks_mmap_engagement(self, tiny_ds, tmp_path):
        path = colstore.save_dataset_npz(tiny_ds, tmp_path / "ds.npz")
        obs.reset()
        try:
            colstore.load_dataset_npz(path)
            assert obs.registry().gauge("colstore.mmap").value == 1.0
            colstore.load_dataset_npz(path, mmap=False)
            assert obs.registry().gauge("colstore.mmap").value == 0.0
        finally:
            obs.reset()


class TestAppendShard:
    def test_appends_accumulate(self, tiny_ds, tmp_path):
        cut = tiny_ds.n_attacks // 2
        first = colstore._slice_dataset(tiny_ds, 0, cut)
        second = colstore._slice_dataset(tiny_ds, cut, tiny_ds.n_attacks)
        path = tmp_path / "grown"
        append_shard(path, first)
        append_shard(path, second)
        store = ShardedDatasetStore(path)
        assert store.n_shards == 2
        assert store.merged_dataset().attack_columns_equal(tiny_ds)

    def test_out_of_order_append_rejected(self, tiny_ds, tmp_path):
        cut = tiny_ds.n_attacks // 2
        path = tmp_path / "grown"
        append_shard(path, colstore._slice_dataset(tiny_ds, cut, tiny_ds.n_attacks))
        with pytest.raises(ValueError, match="strictly after"):
            append_shard(path, colstore._slice_dataset(tiny_ds, 0, cut))

    def test_empty_append_rejected(self, tiny_ds, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            append_shard(tmp_path / "empty", colstore._slice_dataset(tiny_ds, 0, 0))


class TestStreamSpill:
    def _stream(self, tiny_ds):
        s = StreamingDataset(window=tiny_ds.window)
        records = sorted(tiny_ds.iter_attacks(), key=lambda r: (r.timestamp, r.botnet_id))
        return s, records

    def test_spill_partitions_the_stream_prefix(self, tiny_ds, tmp_path):
        s, records = self._stream(tiny_ds)
        path = tmp_path / "spill"
        spilled = 0
        for lo in range(0, len(records), 50):
            s.append_batch(records[lo : lo + 50])
            spilled += s.spill_shards(path)
        assert spilled > 0
        store = ShardedDatasetStore(path)
        full = s.dataset()
        assert store.n_attacks == spilled
        merged = store.merged_dataset()
        np.testing.assert_array_equal(merged.start, full.start[:spilled])
        np.testing.assert_array_equal(merged.botnet_id, full.botnet_id[:spilled])

    def test_spill_without_new_frontier_is_noop(self, tiny_ds, tmp_path):
        s, records = self._stream(tiny_ds)
        s.append_batch(records[:80])
        path = tmp_path / "spill"
        assert s.spill_shards(path) > 0
        assert s.spill_shards(path) == 0  # frontier unchanged

    def test_empty_stream_spills_nothing(self, tiny_ds, tmp_path):
        s = StreamingDataset(window=tiny_ds.window)
        assert s.spill_shards(tmp_path / "spill") == 0
        assert not (tmp_path / "spill").exists()

    def test_late_batch_marks_spill_dirty(self, tiny_ds, tmp_path):
        s, records = self._stream(tiny_ds)
        s.append_batch(records[40:120])
        path = tmp_path / "spill"
        assert s.spill_shards(path) > 0
        s.append_batch(records[:40])  # lands before the spilled frontier
        with pytest.raises(ValueError, match="dirty"):
            s.spill_shards(path)

    def test_spilled_rows_counter(self, tiny_ds, tmp_path):
        obs.reset()
        try:
            s, records = self._stream(tiny_ds)
            s.append_batch(records[:100])
            spilled = s.spill_shards(tmp_path / "spill")
            assert obs.registry().counter("stream.spilled_rows").value == spilled
        finally:
            obs.reset()
