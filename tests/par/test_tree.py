"""Unit tests for the memoized tree reduction in :mod:`repro.par.tree`.

The scheduler's contract: the reduced value equals a serial left fold
for every leaf count, every pairwise combine receives range-adjacent
operands in left-to-right order, ``store`` sees combined subtrees and
spine prefixes (never leaves), and a ``lookup`` hit short-circuits the
whole subtree — so after an append only the O(log n) spine recombines.
"""

from __future__ import annotations

import functools

import pytest

from repro.par.tree import TreeReduceStats, _peaks, tree_reduce


def _concat(a, b):
    return a + b


class TestPeaks:
    @pytest.mark.parametrize(
        ("n", "want"),
        [
            (1, [(0, 1)]),
            (2, [(0, 2)]),
            (3, [(0, 2), (2, 3)]),
            (5, [(0, 4), (4, 5)]),
            (8, [(0, 8)]),
            (11, [(0, 8), (8, 10), (10, 11)]),
        ],
    )
    def test_power_of_two_aligned_decomposition(self, n, want):
        assert _peaks(n) == want

    @pytest.mark.parametrize("n", range(1, 33))
    def test_covers_range_with_aligned_blocks(self, n):
        peaks = _peaks(n)
        assert peaks[0][0] == 0 and peaks[-1][1] == n
        for (_, a_hi), (b_lo, _) in zip(peaks, peaks[1:]):
            assert a_hi == b_lo
        for lo, hi in peaks:
            size = hi - lo
            assert size & (size - 1) == 0  # power of two
            assert lo % size == 0  # aligned


class TestTreeReduce:
    @pytest.mark.parametrize("n", range(1, 18))
    def test_equals_serial_left_fold(self, n):
        value, stats = tree_reduce(n, lambda i: [i], _concat)
        assert value == functools.reduce(_concat, ([i] for i in range(n)))
        assert stats.combined == n - 1
        assert stats.reused == 0

    def test_combines_are_range_adjacent(self):
        # Leaves carry their range; the combine asserts adjacency, so a
        # scheduler that ever pairs non-neighbouring subtrees fails here.
        def adjacent(a, b):
            assert a[1] == b[0], (a, b)
            return (a[0], b[1])

        for n in range(1, 14):
            value, _ = tree_reduce(n, lambda i: (i, i + 1), adjacent)
            assert value == (0, n)

    @pytest.mark.parametrize(
        ("n", "levels", "combined"),
        [(1, 0, 0), (2, 1, 1), (5, 3, 4), (8, 3, 7)],
    )
    def test_round_counts(self, n, levels, combined):
        _, stats = tree_reduce(n, lambda i: [i], _concat)
        assert (stats.levels, stats.combined) == (levels, combined)

    def test_zero_leaves_rejected(self):
        with pytest.raises(ValueError, match="at least one leaf"):
            tree_reduce(0, lambda i: [i], _concat)

    def test_store_sees_subtrees_and_spine_never_leaves(self):
        stored: dict[tuple[int, int], list[int]] = {}
        tree_reduce(5, lambda i: [i], _concat, store=lambda lo, hi, v: stored.__setitem__((lo, hi), v))
        # Aligned subtrees (0,2) (2,4) (0,4) plus the spine prefix (0,5).
        assert set(stored) == {(0, 2), (2, 4), (0, 4), (0, 5)}
        assert all(hi - lo > 1 for lo, hi in stored)
        assert stored[(0, 5)] == [0, 1, 2, 3, 4]

    def test_repeat_reduce_is_one_lookup(self):
        memo: dict[tuple[int, int], list[int]] = {}
        store = lambda lo, hi, v: memo.__setitem__((lo, hi), v)
        lookup = lambda lo, hi: memo.get((lo, hi))
        first, s1 = tree_reduce(8, lambda i: [i], _concat, lookup=lookup, store=store)
        again, s2 = tree_reduce(8, lambda i: [i], _concat, lookup=lookup, store=store)
        assert again == first == list(range(8))
        assert (s2.levels, s2.reused, s2.combined) == (0, 1, 0)

    @pytest.mark.parametrize("n", [2, 5, 8, 13])
    def test_append_recombines_only_the_spine(self, n):
        memo: dict[tuple[int, int], list[int]] = {}
        store = lambda lo, hi, v: memo.__setitem__((lo, hi), v)
        leaves_built: list[int] = []

        def leaf(i):
            leaves_built.append(i)
            memo[(i, i + 1)] = [i]
            return [i]

        tree_reduce(n, leaf, _concat, lookup=lambda lo, hi: memo.get((lo, hi)), store=store)
        leaves_built.clear()
        value, stats = tree_reduce(n + 1, leaf, _concat, lookup=lambda lo, hi: memo.get((lo, hi)), store=store)
        assert value == list(range(n + 1))
        assert leaves_built == [n]  # every old leaf served from the memo
        # Strictly fewer combines than a from-scratch reduce would need.
        assert stats.combined < n
        assert stats.reused >= 1

    def test_stats_dataclass_defaults(self):
        stats = TreeReduceStats()
        assert (stats.levels, stats.reused, stats.combined) == (0, 0, 0)
