"""Tests for the append-oriented dataset builder."""

import dataclasses

import numpy as np
import pytest

from repro.stream import IngestError, StreamingDataset


@pytest.fixture(scope="module")
def records(small_ds):
    return list(small_ds.iter_attacks())


class TestAppend:
    def test_empty_append_is_noop(self):
        stream = StreamingDataset()
        assert stream.append_batch([]) == 0
        assert stream.epoch == 0
        assert stream.n_attacks == 0

    def test_epoch_bumps_per_batch(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:10])
        assert stream.epoch == 1
        stream.append_batch(records[10:20])
        assert stream.epoch == 2
        stream.append_batch([])  # no records, no epoch
        assert stream.epoch == 2

    def test_accepts_generator(self, records):
        stream = StreamingDataset()
        n = stream.append_batch(r for r in records[:25])
        assert n == 25
        assert stream.n_attacks == 25

    def test_strict_raises_with_index(self, records):
        bad = dataclasses.replace(records[3], end_time=records[3].timestamp - 5)
        stream = StreamingDataset()
        with pytest.raises(IngestError) as exc_info:
            stream.append_batch(records[:3] + [bad])
        assert exc_info.value.index == 3
        assert "record #3" in str(exc_info.value)

    def test_strict_raises_on_wrong_type(self):
        stream = StreamingDataset()
        with pytest.raises(IngestError) as exc_info:
            stream.append_batch(["not a record"])
        assert exc_info.value.index == 0

    def test_non_strict_drops(self, records):
        bad = dataclasses.replace(records[0], end_time=records[0].timestamp - 5)
        stream = StreamingDataset()
        n = stream.append_batch([bad] + records[:4], strict=False)
        assert n == 4
        assert stream.n_attacks == 4

    def test_strict_failure_leaves_stream_unchanged(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:5])
        bad = dataclasses.replace(records[9], end_time=records[9].timestamp - 5)
        with pytest.raises(IngestError):
            stream.append_batch(records[5:9] + [bad])
        assert stream.n_attacks == 5
        assert stream.epoch == 1


class TestSnapshots:
    def test_context_cached_per_epoch(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:50])
        ctx1 = stream.context()
        assert stream.context() is ctx1
        assert ctx1.epoch == 1
        stream.append_batch(records[50:60])
        ctx2 = stream.context()
        assert ctx2 is not ctx1
        assert ctx2.epoch == 2

    def test_context_prewarm_jobs(self, records):
        """A prewarmed epoch snapshot matches an unwarmed one, and a warm
        epoch only prewarms what the carry invalidated."""
        stream = StreamingDataset()
        stream.append_batch(records[:60])
        plain = stream.context()
        plain_keys = set(plain.view_keys())

        warmed_stream = StreamingDataset()
        warmed_stream.append_batch(records[:60])
        warmed = warmed_stream.context(prewarm_jobs=1)
        assert set(warmed.view_keys()) >= plain_keys
        assert warmed.collaborations() == plain.collaborations()

        # Next epoch: carried views are already materialised, so the
        # prewarm only fills the invalidated keys; results still match a
        # scratch build over the same records.
        warmed_stream.append_batch(records[60:80])
        ctx2 = warmed_stream.context(prewarm_jobs=1)
        assert ctx2.epoch == 2
        scratch = StreamingDataset()
        scratch.append_batch(records[:80])
        assert ctx2.chains() == scratch.context().chains()
        assert ctx2.collaborations() == scratch.context().collaborations()
        # cached-epoch call returns the same, already-warm context
        assert warmed_stream.context(prewarm_jobs=1) is ctx2

    def test_old_snapshot_survives_append(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:50])
        old = stream.dataset()
        old_starts = old.start.copy()
        stream.append_batch(records[50:200])
        assert old.n_attacks == 50
        assert np.array_equal(old.start, old_starts)

    def test_snapshot_columns_readonly(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:10])
        ds = stream.dataset()
        with pytest.raises(ValueError):
            ds.start[0] = 0.0

    def test_new_family_mid_alphabet_remaps(self, records):
        # Feed families in an order that forces a mid-list insertion and
        # check the committed family indices stay consistent.
        by_family: dict[str, list] = {}
        for rec in records:
            by_family.setdefault(rec.family, []).append(rec)
        fams = sorted(by_family)
        assert len(fams) >= 3
        stream = StreamingDataset()
        stream.append_batch(by_family[fams[0]] + by_family[fams[-1]])
        stream.append_batch(by_family[fams[1]])  # inserts between them
        ds = stream.dataset()
        for i in range(ds.n_attacks):
            assert ds.attack(i).family == ds.families[ds.family_idx[i]]

    def test_out_of_order_append_resorts(self, records):
        # Reversed chronological batches: content equal to the scratch
        # build, column order still sorted by start.
        stream = StreamingDataset(window=None)
        half = len(records) // 2
        stream.append_batch(records[half:])
        stream.append_batch(records[:half])
        ds = stream.dataset()
        assert ds.n_attacks == len(records)
        assert np.all(np.diff(ds.start) >= 0)
        assert np.array_equal(
            np.sort(ds.start), np.sort(np.asarray([r.timestamp for r in records]))
        )
