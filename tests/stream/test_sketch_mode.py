"""Stream-layer sketch mode: bounded-memory builders and watch sessions.

Covers the two memory models documented in ``docs/STREAMING.md``:
``StreamingDataset(sketches=True)`` (exact columns *plus* a running
summary with per-epoch snapshots) and ``WatchSession(sketch=True)``
(summary plus a bounded deque of recent records — no exact columns).
"""

from __future__ import annotations

import pytest

from repro.io.jsonlio import append_attacks_jsonl
from repro.stream import StreamingDataset, WatchSession


@pytest.fixture(scope="module")
def records(tiny_ds):
    return sorted(tiny_ds.iter_attacks(), key=lambda r: r.timestamp)


class TestStreamingDatasetSketches:
    def test_disabled_by_default(self, records):
        stream = StreamingDataset()
        stream.append_batch(records[:10])
        assert stream.sketch is None
        with pytest.raises(ValueError, match="sketches"):
            stream.sketch_snapshot()

    def test_summary_tracks_appends(self, records):
        stream = StreamingDataset(sketches=True)
        stream.append_batch(records[:100])
        stream.append_batch(records[100:150])
        assert stream.sketch.n_records == 150
        assert stream.n_attacks == 150

    def test_snapshot_cached_per_epoch_and_frozen(self, records):
        stream = StreamingDataset(sketches=True)
        stream.append_batch(records[:50])
        snap = stream.sketch_snapshot()
        assert snap is stream.sketch_snapshot()  # same epoch -> same copy
        stream.append_batch(records[50:80])
        later = stream.sketch_snapshot()
        assert later is not snap
        assert snap.n_records == 50  # old snapshot unaffected
        assert later.n_records == 80

    def test_summary_matches_batch_fold(self, records, tiny_ds):
        from repro.sketch import summarize_dataset

        stream = StreamingDataset(sketches=True)
        for i in range(0, len(records), 64):
            stream.append_batch(records[i : i + 64])
        whole = summarize_dataset(tiny_ds)
        est_s, est_w = stream.sketch.estimate(), whole.estimate()
        assert est_s["n_records"] == est_w["n_records"]
        assert est_s["families"] == est_w["families"]
        assert est_s["distinct"] == est_w["distinct"]

    def test_resident_bytes_grows_with_columns(self, records):
        stream = StreamingDataset(sketches=True)
        base = stream.resident_bytes()
        assert base > 0
        stream.append_batch(records)
        assert stream.resident_bytes() >= base

    def test_rejected_batch_leaves_summary_unchanged(self, records):
        stream = StreamingDataset(sketches=True)
        stream.append_batch(records[:10])
        with pytest.raises(Exception):
            stream.append_batch([object()])
        assert stream.sketch.n_records == 10


class TestWatchSketchMode:
    def test_fold_and_render(self, records):
        session = WatchSession("never-written.jsonl", sketch=True, exact_window=50)
        assert session.fold(records[:120]) == 120
        assert session.n_attacks == 120
        assert session.stream is None  # no exact columns in sketch mode
        assert len(session.recent) == 50
        assert session.recent[-1].ddos_id == records[119].ddos_id
        text = session.render()
        assert text.startswith("Sketch summary over 120 attacks")

    def test_poll_tails_into_summary(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        session = WatchSession(path, sketch=True, exact_window=10)
        append_attacks_jsonl(records[:25], path)
        rendered = session.poll()
        assert rendered and rendered.startswith("Sketch summary over 25 attacks")
        assert session.sketch.n_records == 25
        assert len(session.recent) == 10
        assert session.poll() is None  # nothing new -> no re-render
        append_attacks_jsonl(records[25:30], path)
        assert session.poll() is not None
        assert session.sketch.n_records == 30

    def test_custom_renderer_receives_summary(self, records):
        seen = []

        def renderer(summary):
            seen.append(summary.n_records)
            return f"custom:{summary.n_records}"

        session = WatchSession("never.jsonl", sketch=True, renderer=renderer)
        session.fold(records[:7])
        assert session.render() == "custom:7"
        assert seen == [7]

    def test_exact_mode_unchanged(self, records):
        session = WatchSession("never.jsonl")
        session.fold(records[:5])
        assert session.sketch is None
        assert session.stream is not None
        assert session.n_attacks == 5

    def test_epoch_counts_folds(self, records):
        session = WatchSession("never.jsonl", sketch=True)
        assert session.epoch == 0
        session.fold(records[:5])
        session.fold(records[5:10])
        assert session.epoch == 2
        session.fold([])  # empty fold is not an epoch
        assert session.epoch == 2

    def test_memory_is_bounded_by_window_not_stream(self, records):
        session = WatchSession("never.jsonl", sketch=True, exact_window=16)
        for _ in range(5):
            session.fold(records)
        assert len(session.recent) == 16
        assert session.n_attacks == 5 * len(records)
        # The summary's resident bytes do not scale with n_attacks.
        assert session.sketch.memory_bytes() < 1 << 20
