"""Streaming parity: K-batch appends equal the scratch batch build.

The acceptance bar for the streaming layer: after ANY sequence of
``append_batch`` calls, the snapshot dataset and every materialized
AnalysisContext view must be array-equal to a scratch
``dataset_from_records`` build over the same records.  Views are
touched after EACH append so the incremental carry path (not just the
lazy rebuild) is what gets verified.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.context import AnalysisContext
from repro.io.ingest import dataset_from_records
from repro.stream import StreamingDataset


@pytest.fixture(scope="module")
def records(small_ds):
    return list(small_ds.iter_attacks())


@pytest.fixture(scope="module")
def scratch(records, small_ds):
    return dataset_from_records(records, window=small_ds.window)


def touch_views(ctx: AnalysisContext) -> None:
    """Materialize every incrementally-maintained view."""
    for family in ctx.dataset.families:
        ctx.family_attacks(family)
        ctx.family_starts(family)
        ctx.family_intervals(family)
        ctx.family_intervals(family, include_simultaneous=False)
        ctx.durations(family)
        ctx.family_target_country_counts(family)
        ctx.daily_distribution(family)
    ctx.attack_intervals()
    ctx.durations()
    ctx.target_country_idx()
    ctx.target_org_idx()
    ctx.target_country_counts()
    ctx.daily_distribution()
    ctx.protocol_popularity()
    ctx.protocol_breakdown()
    ctx.target_attacks(0)
    if ctx.dataset.n_attacks:
        ctx.botnet_attacks(int(ctx.dataset.botnet_id[0]))


def views_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        return all(
            views_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, dict):
        return set(a) == set(b) and all(views_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(views_equal(x, y) for x, y in zip(a, b))
    return a == b


def assert_context_parity(stream_ctx: AnalysisContext, scratch_ds) -> None:
    reference = AnalysisContext(scratch_ds)
    touch_views(reference)
    materialized = stream_ctx.materialized()
    for key, expected in reference.materialized().items():
        assert key in materialized, f"view {key} missing from streamed context"
        assert views_equal(expected, materialized[key]), f"view {key} differs"


@pytest.mark.parametrize("k", [1, 3, 17])
def test_k_batch_parity(k, records, scratch, small_ds):
    stream = StreamingDataset(window=small_ds.window)
    chunk = (len(records) + k - 1) // k
    for i in range(0, len(records), chunk):
        stream.append_batch(records[i : i + chunk])
        touch_views(stream.context())  # exercise the carry on every epoch
    assert stream.dataset().attack_columns_equal(scratch)
    assert_context_parity(stream.context(), scratch)


def test_single_record_appends(records, small_ds):
    # The pathological K = n case on a prefix: every append is one record.
    subset = records[:60]
    scratch = dataset_from_records(subset, window=small_ds.window)
    stream = StreamingDataset(window=small_ds.window)
    for rec in subset:
        stream.append_batch([rec])
        touch_views(stream.context())
    assert stream.dataset().attack_columns_equal(scratch)
    assert_context_parity(stream.context(), scratch)


def test_parity_without_touching_views(records, scratch, small_ds):
    # Lazy path: never materialize mid-stream, everything rebuilds cold.
    stream = StreamingDataset(window=small_ds.window)
    chunk = (len(records) + 2) // 3
    for i in range(0, len(records), chunk):
        stream.append_batch(records[i : i + chunk])
    assert stream.dataset().attack_columns_equal(scratch)
    ctx = stream.context()
    touch_views(ctx)
    assert_context_parity(ctx, scratch)


def test_inferred_window_parity(records):
    # No fixed window: both sides must infer the identical padded span.
    stream = StreamingDataset()
    chunk = (len(records) + 4) // 5
    for i in range(0, len(records), chunk):
        stream.append_batch(records[i : i + chunk])
        touch_views(stream.context())
    scratch = dataset_from_records(records)
    assert stream.dataset().window == scratch.window
    assert stream.dataset().attack_columns_equal(scratch)
    assert_context_parity(stream.context(), scratch)


def test_expensive_views_invalidate_lazily(records, small_ds):
    stream = StreamingDataset(window=small_ds.window)
    stream.append_batch(records[:400])
    ctx1 = stream.context()
    collabs1 = ctx1.collaborations()
    stream.append_batch(records[400:])
    ctx2 = stream.context()
    # The new epoch's context does not inherit the expensive scan ...
    assert ("collaborations",) not in ctx2.materialized()
    # ... the old epoch's context still holds it ...
    assert ctx1.collaborations() is collabs1
    # ... and a fresh scan on the new snapshot matches scratch.
    scratch = dataset_from_records(records, window=small_ds.window)
    expected = AnalysisContext(scratch).collaborations()
    assert len(ctx2.collaborations()) == len(expected)
