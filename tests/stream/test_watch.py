"""Tests for the JSONL tailer and the watch session."""

import json

import pytest

from repro.io.jsonlio import append_attacks_jsonl, record_to_json
from repro.stream import JsonlTail, WatchSession


@pytest.fixture(scope="module")
def records(tiny_ds):
    return list(tiny_ds.iter_attacks())


class TestJsonlTail:
    def test_missing_file_yields_nothing(self, tmp_path):
        tail = JsonlTail(tmp_path / "absent.jsonl")
        assert tail.poll() == []

    def test_exactly_once(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        tail = JsonlTail(path)
        append_attacks_jsonl(records[:5], path)
        first = tail.poll()
        assert [r.ddos_id for r in first] == [r.ddos_id for r in records[:5]]
        assert tail.poll() == []  # nothing new
        append_attacks_jsonl(records[5:8], path)
        second = tail.poll()
        assert [r.ddos_id for r in second] == [r.ddos_id for r in records[5:8]]

    def test_partial_line_left_for_next_poll(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        full = json.dumps(record_to_json(records[0]))
        torn = json.dumps(record_to_json(records[1]))
        path.write_text(full + "\n" + torn[: len(torn) // 2])
        tail = JsonlTail(path)
        assert len(tail.poll()) == 1  # only the complete line
        path.write_text(full + "\n" + torn + "\n")
        assert [r.ddos_id for r in tail.poll()] == [records[1].ddos_id]

    def test_truncation_restarts(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        append_attacks_jsonl(records[:10], path)
        tail = JsonlTail(path)
        assert len(tail.poll()) == 10
        path.write_text("")  # rotation
        append_attacks_jsonl(records[10:12], path)
        assert len(tail.poll()) == 2

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            JsonlTail(path).poll()


class TestWatchSession:
    def test_poll_renders_only_on_change(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        session = WatchSession(path)
        assert session.poll() is None  # no file yet
        append_attacks_jsonl(records[:20], path)
        report = session.poll()
        assert report is not None
        assert "attacks: 20" in report
        assert session.n_attacks == 20
        assert session.epoch == 1
        assert session.poll() is None  # unchanged file, no re-render
        assert session.epoch == 1

    def test_no_reprocessing_of_seen_records(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        session = WatchSession(path)
        append_attacks_jsonl(records[:20], path)
        session.poll()
        append_attacks_jsonl(records[20:25], path)
        session.poll()
        # 20 + 5, not 20 + 25: the first batch was never re-ingested.
        assert session.n_attacks == 25

    def test_custom_renderer(self, tmp_path, records):
        path = tmp_path / "log.jsonl"
        session = WatchSession(path, renderer=lambda ctx: f"n={ctx.dataset.n_attacks}")
        append_attacks_jsonl(records[:7], path)
        assert session.poll() == "n=7"

    def test_render_before_any_data(self, tmp_path):
        session = WatchSession(tmp_path / "log.jsonl")
        assert "no attacks" in session.render()
