"""End-to-end CLI tests (tiny scale, cached per session)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("cli-cache"))


def run_cli(capsys, *args):
    code = main(list(args))
    out = capsys.readouterr().out
    return code, out


BASE = ["--scale", "0.005", "--seed", "7"]


class TestCli:
    def test_experiments_list(self, capsys):
        code, out = run_cli(capsys, *BASE, "experiments", "--list")
        assert code == 0
        assert "table4_prediction" in out

    def test_report(self, capsys, cache_dir):
        code, out = run_cli(capsys, *BASE, "--cache-dir", cache_dir, "report")
        assert code == 0
        assert "attacks:" in out
        assert "Intra-Family" in out

    def test_generate(self, capsys, cache_dir, tmp_path):
        code, out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir,
            "generate", "--out", str(tmp_path), "--botlist-limit", "20",
        )
        assert code == 0
        assert (tmp_path / "ddos_attacks.csv").exists()
        assert (tmp_path / "botlist.csv").exists()
        assert (tmp_path / "botnetlist.csv").exists()

    def test_single_experiment(self, capsys, cache_dir):
        code, out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir, "experiments", "--only", "fig2_daily"
        )
        assert code == 0
        assert "fig2_daily" in out

    def test_unknown_experiment_fails(self, capsys, cache_dir):
        code, _out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir, "experiments", "--only", "nope"
        )
        assert code == 1

    def test_predict_needs_data(self, capsys, cache_dir):
        code, out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir,
            "predict", "--family", "dirtjumper", "--order", "1,0,0",
        )
        # Tiny scale may not have enough points; both outcomes are valid
        # exits, never a crash.
        assert code in (0, 1)

    def test_generate_with_figures(self, capsys, cache_dir, tmp_path):
        code, _out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir,
            "generate", "--out", str(tmp_path), "--botlist-limit", "5", "--figures",
        )
        assert code == 0
        assert (tmp_path / "figures" / "fig7_duration_cdf.csv").exists()

    def test_defense_subcommand(self, capsys, cache_dir):
        code, out = run_cli(capsys, *BASE, "--cache-dir", cache_dir, "defense")
        assert code == 0
        assert "blacklists" in out
        assert "detection windows" in out

    def test_predict_bad_order(self, capsys, cache_dir):
        code, _out = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir,
            "predict", "--family", "dirtjumper", "--order", "abc",
        )
        assert code == 2

    def test_experiments_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main([*BASE, "experiments", "--jobs", "0"])
        assert exc_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_experiments_jobs_not_an_int(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main([*BASE, "experiments", "--jobs", "two"])
        assert exc_info.value.code == 2

    def test_watch_with_max_polls(self, capsys, cache_dir, tmp_path):
        from repro.datagen.config import DatasetConfig
        from repro.io.cache import load_or_generate
        from repro.io.jsonlio import append_attacks_jsonl

        ds = load_or_generate(DatasetConfig(seed=7, scale=0.005), cache_dir)
        log = tmp_path / "attacks.jsonl"
        append_attacks_jsonl(list(ds.iter_attacks())[:50], log)
        code, out = run_cli(
            capsys, "watch", "--path", str(log), "--interval", "0.01",
            "--max-polls", "2",
        )
        assert code == 0
        assert "attacks: 50" in out
        assert "epoch 1" in out

    def test_watch_missing_log_exits_cleanly(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "watch", "--path", str(tmp_path / "absent.jsonl"),
            "--interval", "0.01", "--max-polls", "1",
        )
        assert code == 0
        assert out == ""


class TestShardCli:
    @pytest.fixture()
    def flat_npz(self, cache_dir, tmp_path):
        from repro.datagen.config import DatasetConfig
        from repro.io.cache import load_or_generate
        from repro.io.colstore import save_dataset_npz

        ds = load_or_generate(DatasetConfig(seed=7, scale=0.005), cache_dir)
        return save_dataset_npz(ds, tmp_path / "flat.npz")

    def test_convert_shards_then_info(self, capsys, tmp_path, flat_npz):
        store = tmp_path / "store"
        code, out = run_cli(capsys, "convert", str(flat_npz), str(store), "--shards", "3")
        assert code == 0
        assert "across 3 shards" in out
        code, out = run_cli(capsys, "shard", "info", str(store))
        assert code == 0
        assert "shards:    3" in out
        assert "shard-0000.npz" in out

    def test_convert_shard_by_duration(self, capsys, tmp_path, flat_npz):
        store = tmp_path / "by-month"
        code, out = run_cli(capsys, "convert", str(flat_npz), str(store), "--shard-by", "60d")
        assert code == 0
        assert "shards" in out

    def test_convert_store_back_to_flat(self, capsys, tmp_path, flat_npz):
        import numpy as np

        from repro import api

        store = tmp_path / "store"
        run_cli(capsys, "convert", str(flat_npz), str(store), "--shards", "2")
        code, _out = run_cli(capsys, "convert", str(store), str(tmp_path / "back.npz"))
        assert code == 0
        ds = api.load(flat_npz)
        back = api.load(tmp_path / "back.npz")
        assert np.array_equal(back.start, ds.start)

    def test_shard_info_rejects_non_store(self, capsys, tmp_path):
        code = main(["shard", "info", str(tmp_path)])
        assert code == 1
        assert "not a sharded store" in capsys.readouterr().err

    def test_convert_bad_duration_rejected(self, capsys, flat_npz, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(["convert", str(flat_npz), str(tmp_path / "s"), "--shard-by", "soon"])
        assert exc_info.value.code == 2

    def test_experiments_sharded_matches_flat(self, capsys, cache_dir):
        code, flat = run_cli(capsys, *BASE, "--cache-dir", cache_dir, "experiments")
        assert code == 0
        code, sharded = run_cli(
            capsys, *BASE, "--cache-dir", cache_dir, "experiments", "--shards", "3"
        )
        assert code == 0
        assert sharded == flat
