"""Tests for the from-scratch ARIMA estimator."""

import numpy as np
import pytest

from repro.timeseries.arima import ARIMA
from repro.timeseries.hannan_rissanen import hannan_rissanen, yule_walker
from repro.timeseries.metrics import compare_forecast


def simulate_arma(phi, theta, n=4000, seed=0, const=0.0):
    rng = np.random.default_rng(seed)
    p, q = len(phi), len(theta)
    y = np.zeros(n)
    eps = rng.normal(size=n)
    for t in range(max(p, q), n):
        y[t] = const + eps[t]
        for i, ph in enumerate(phi):
            y[t] += ph * y[t - 1 - i]
        for j, th in enumerate(theta):
            y[t] += th * eps[t - 1 - j]
    return y


class TestYuleWalker:
    def test_recovers_ar1(self):
        y = simulate_arma([0.6], [])
        phi = yule_walker(y, 1)
        assert phi[0] == pytest.approx(0.6, abs=0.05)

    def test_recovers_ar2(self):
        y = simulate_arma([0.5, 0.3], [])
        phi = yule_walker(y, 2)
        assert phi[0] == pytest.approx(0.5, abs=0.06)
        assert phi[1] == pytest.approx(0.3, abs=0.06)

    def test_p_zero(self):
        assert yule_walker([1.0, 2.0, 3.0], 0).size == 0


class TestHannanRissanen:
    def test_arma11_start_values(self):
        y = simulate_arma([0.6], [0.4])
        phi, theta = hannan_rissanen(y - y.mean(), 1, 1)
        assert phi[0] == pytest.approx(0.6, abs=0.15)
        assert theta[0] == pytest.approx(0.4, abs=0.2)

    def test_degenerate_orders(self):
        phi, theta = hannan_rissanen(np.random.default_rng(0).normal(size=50), 0, 0)
        assert phi.size == 0 and theta.size == 0


class TestARIMAFit:
    def test_recovers_ar1_coefficient(self):
        y = simulate_arma([0.6], [], const=2.0)
        fit = ARIMA((1, 0, 0)).fit(y)
        assert fit.phi[0] == pytest.approx(0.6, abs=0.06)
        # const relates to the mean: mean = const / (1 - phi).
        assert fit.const / (1 - fit.phi[0]) == pytest.approx(np.mean(y), rel=0.2)

    def test_recovers_ma1_coefficient(self):
        y = simulate_arma([], [0.5])
        fit = ARIMA((0, 0, 1)).fit(y)
        assert fit.theta[0] == pytest.approx(0.5, abs=0.08)

    def test_sigma2_positive(self):
        y = simulate_arma([0.4], [])
        fit = ARIMA((1, 0, 0)).fit(y)
        assert fit.sigma2 == pytest.approx(1.0, rel=0.15)

    def test_aic_prefers_true_order(self):
        y = simulate_arma([0.7], [], n=3000)
        aic_ar1 = ARIMA((1, 0, 0)).fit(y).aic
        aic_white = ARIMA((0, 0, 0)).fit(y).aic
        assert aic_ar1 < aic_white

    def test_mean_only_model(self):
        y = np.random.default_rng(0).normal(5.0, 1.0, 500)
        fit = ARIMA((0, 0, 0)).fit(y)
        assert fit.const == pytest.approx(5.0, abs=0.15)
        assert np.allclose(fit.forecast(3), fit.const)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            ARIMA((2, 1, 2)).fit([1.0, 2.0, 3.0])

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            ARIMA((-1, 0, 0))


class TestForecast:
    def test_random_walk_forecast_is_flat(self):
        rng = np.random.default_rng(1)
        y = np.cumsum(rng.normal(size=800))
        fit = ARIMA((0, 1, 0)).fit(y)
        f = fit.forecast(5)
        assert np.allclose(f, y[-1] + fit.const * np.arange(1, 6), atol=1e-6)

    def test_forecast_steps_positive(self):
        y = simulate_arma([0.4], [], n=200)
        fit = ARIMA((1, 0, 0)).fit(y)
        with pytest.raises(ValueError):
            fit.forecast(0)

    def test_ar1_forecast_decays_to_mean(self):
        y = simulate_arma([0.8], [], n=3000, const=1.0)
        mean = float(np.mean(y))
        fit = ARIMA((1, 0, 0)).fit(y)
        f = fit.forecast(60)
        assert f[-1] == pytest.approx(mean, rel=0.25)


class TestForecastInterval:
    def test_band_contains_point(self):
        y = simulate_arma([0.6], [], n=1500)
        fit = ARIMA((1, 0, 0)).fit(y)
        point, lower, upper = fit.forecast_interval(10)
        assert np.all(lower <= point)
        assert np.all(point <= upper)

    def test_band_widens_with_horizon(self):
        y = simulate_arma([0.6], [], n=1500)
        fit = ARIMA((1, 0, 0)).fit(y)
        _p, lower, upper = fit.forecast_interval(20)
        widths = upper - lower
        assert widths[-1] >= widths[0]
        assert np.all(np.diff(widths) >= -1e-9)

    def test_coverage_on_ar1(self):
        rng = np.random.default_rng(7)
        hits = 0
        total = 0
        y = simulate_arma([0.5], [], n=3000, seed=7)
        fit = ARIMA((1, 0, 0)).fit(y[:2000])
        # One-step interval should cover ~95% of the next observations.
        for t in range(2000, 2400):
            sub_fit_point = fit.const + fit.phi[0] * y[t - 1]
            sigma = np.sqrt(fit.sigma2)
            if abs(y[t] - sub_fit_point) <= 1.96 * sigma:
                hits += 1
            total += 1
        _ = rng
        assert hits / total > 0.90

    def test_random_walk_bands_grow_like_sqrt(self):
        rng = np.random.default_rng(1)
        y = np.cumsum(rng.normal(size=2000))
        fit = ARIMA((0, 1, 0)).fit(y)
        _p, lower, upper = fit.forecast_interval(16)
        widths = upper - lower
        # sqrt growth: width(16) ~ 4x width(1).
        assert widths[15] == pytest.approx(4 * widths[0], rel=0.3)


class TestRollingForecast:
    @pytest.mark.parametrize("order", [(1, 0, 0), (0, 1, 1), (2, 1, 2), (2, 0, 2)])
    def test_tracks_stationary_series(self, order):
        rng = np.random.default_rng(0)
        n = 2000
        y = np.empty(n)
        y[0] = 500.0
        for t in range(1, n):
            y[t] = 500 + 0.6 * (y[t - 1] - 500) + rng.normal(0, 50)
        fit = ARIMA(order).fit(y[:1000])
        pred = fit.rolling_forecast(y[1000:])
        c = compare_forecast(y[1000:], pred)
        # The key regression: no explosive drift, high similarity.
        assert abs(c.prediction_mean - c.truth_mean) < 50
        assert c.similarity > 0.97
        assert c.rmse < 100

    def test_empty_continuation(self):
        y = simulate_arma([0.4], [], n=200)
        fit = ARIMA((1, 0, 0)).fit(y)
        assert fit.rolling_forecast([]).size == 0


class TestResidualDiagnostics:
    def test_good_fit_has_white_residuals(self):
        y = simulate_arma([0.6], [], n=2500)
        fit = ARIMA((1, 0, 0)).fit(y)
        _q, pvalue = fit.residual_diagnostics(y)
        assert pvalue > 0.01

    def test_underfit_detected(self):
        y = simulate_arma([0.6, 0.3], [], n=2500)
        fit = ARIMA((0, 0, 0)).fit(y)  # mean-only model ignores AR structure
        _q, pvalue = fit.residual_diagnostics(y)
        assert pvalue < 1e-6
