"""Tests for AIC/BIC order selection."""

import numpy as np
import pytest

from repro.timeseries.order_selection import select_order


def ar1(phi, n=1500, seed=0):
    rng = np.random.default_rng(seed)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = phi * y[t - 1] + rng.normal()
    return y


class TestSelectOrder:
    def test_prefers_low_order_for_ar1(self):
        result = select_order(ar1(0.7), max_p=2, max_d=1, max_q=2)
        p, d, q = result.best_order
        # AR(1)-like structure: needs some AR or MA terms, not white noise.
        assert (p, d, q) != (0, 0, 0)
        assert result.best_fit.aic == min(
            score for order, score in result.scores.items() if order == result.best_order
        )

    def test_scores_populated(self):
        result = select_order(ar1(0.5, n=300), max_p=1, max_d=1, max_q=1)
        assert len(result.scores) >= 4
        assert all(np.isfinite(v) for v in result.scores.values())

    def test_bic_criterion(self):
        result = select_order(ar1(0.5, n=300), max_p=1, max_d=0, max_q=1, criterion="bic")
        assert result.criterion == "bic"

    def test_bad_criterion(self):
        with pytest.raises(ValueError):
            select_order(ar1(0.5, n=200), criterion="hqic")

    def test_white_noise_picks_simple_model(self):
        y = np.random.default_rng(5).normal(size=1200)
        result = select_order(y, max_p=2, max_d=1, max_q=2)
        p, d, q = result.best_order
        assert d == 0
        assert p + q <= 2
