"""Tests for forecast metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.metrics import (
    compare_forecast,
    cosine_similarity,
    error_rates,
    mean_absolute_error,
    root_mean_squared_error,
)

vec_st = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), min_size=1, max_size=30
)


class TestCosine:
    def test_identical(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_opposite(self):
        assert cosine_similarity([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vectors(self):
        assert cosine_similarity([0, 0], [0, 0]) == 1.0
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1, 2], [1, 2, 3])

    @given(vec_st)
    @settings(max_examples=100)
    def test_bounded(self, v):
        other = [x + 1.0 for x in v]
        s = cosine_similarity(v, other)
        assert -1.0 - 1e-9 <= s <= 1.0 + 1e-9


class TestErrors:
    def test_mae_rmse(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)
        assert root_mean_squared_error([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_error_rates_floor(self):
        rates = error_rates([0.0, 100.0], [10.0, 110.0], floor=50.0)
        assert rates[0] == pytest.approx(10.0 / 50.0)
        assert rates[1] == pytest.approx(10.0 / 100.0)

    def test_error_rates_default_floor(self):
        rates = error_rates([100.0, 0.0], [100.0, 50.0])
        assert np.isfinite(rates).all()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            error_rates([], [])


class TestCompare:
    def test_fields(self):
        c = compare_forecast([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert c.similarity == pytest.approx(1.0)
        assert c.mae == 0.0
        assert c.rmse == 0.0
        assert c.n_points == 3
        assert c.truth_mean == pytest.approx(2.0)
        assert c.prediction_std == pytest.approx(np.std([1, 2, 3]))
