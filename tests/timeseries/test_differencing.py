"""Tests for differencing/integration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.differencing import difference, integrate, integrate_forecast

series_st = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=4, max_size=40
)


class TestDifference:
    def test_first_difference(self):
        assert difference([1.0, 3.0, 6.0]).tolist() == [2.0, 3.0]

    def test_second_difference(self):
        assert difference([1.0, 3.0, 6.0, 10.0], d=2).tolist() == [1.0, 1.0]

    def test_d_zero_is_identity(self):
        y = np.array([1.0, 2.0])
        assert difference(y, 0).tolist() == [1.0, 2.0]

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            difference([1.0], 1)
        with pytest.raises(ValueError):
            difference([1.0, 2.0], -1)


class TestIntegrate:
    @given(series_st)
    @settings(max_examples=100)
    def test_roundtrip_d1(self, values):
        y = np.asarray(values)
        d = difference(y, 1)
        restored = integrate(d, [y[0]])
        assert np.allclose(restored, y, atol=1e-6)

    @given(series_st)
    @settings(max_examples=100)
    def test_roundtrip_d2(self, values):
        y = np.asarray(values)
        d2 = difference(y, 2)
        heads = [y[0], float(np.diff(y)[0])]
        restored = integrate(d2, heads)
        assert np.allclose(restored, y, atol=1e-5)


class TestIntegrateForecast:
    def test_continues_series_d1(self):
        # Original series 10, 12, 15; forecast of diffs [2, 2] continues
        # as 17, 19.
        out = integrate_forecast([2.0, 2.0], np.array([15.0]))
        assert out.tolist() == [17.0, 19.0]

    def test_matches_explicit_cumsum(self):
        rng = np.random.default_rng(0)
        y = np.cumsum(rng.normal(size=30)) + 100
        d = difference(y, 1)
        future_d = np.array([0.5, -0.2, 0.1])
        out = integrate_forecast(future_d, np.array([y[-1]]))
        expect = y[-1] + np.cumsum(future_d)
        assert np.allclose(out, expect)
