"""Tests for ACF/PACF/Ljung-Box diagnostics."""

import numpy as np
import pytest

from repro.timeseries.acf import acf, ljung_box, pacf


def ar1(phi: float, n: int = 4000, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    y = np.zeros(n)
    for t in range(1, n):
        y[t] = phi * y[t - 1] + rng.normal()
    return y


class TestAcf:
    def test_lag_zero_is_one(self):
        assert acf(np.random.default_rng(0).normal(size=100), 5)[0] == 1.0

    def test_white_noise_near_zero(self):
        r = acf(np.random.default_rng(1).normal(size=5000), 5)
        assert np.all(np.abs(r[1:]) < 0.05)

    def test_ar1_geometric_decay(self):
        r = acf(ar1(0.7), 3)
        assert r[1] == pytest.approx(0.7, abs=0.05)
        assert r[2] == pytest.approx(0.49, abs=0.06)

    def test_constant_series(self):
        r = acf(np.ones(50), 4)
        assert r[0] == 1.0
        assert np.all(r[1:] == 0.0)

    def test_nlags_clipped(self):
        r = acf([1.0, 2.0, 3.0], 10)
        assert r.size == 3  # lags 0..2

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            acf([1.0], 1)
        with pytest.raises(ValueError):
            acf([1.0, 2.0], -1)


class TestPacf:
    def test_ar1_cuts_off_after_lag_one(self):
        p = pacf(ar1(0.7), 4)
        assert p[1] == pytest.approx(0.7, abs=0.05)
        assert abs(p[2]) < 0.06
        assert abs(p[3]) < 0.06

    def test_ar2_cuts_off_after_lag_two(self):
        rng = np.random.default_rng(2)
        n = 6000
        y = np.zeros(n)
        for t in range(2, n):
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + rng.normal()
        p = pacf(y, 4)
        assert abs(p[2]) > 0.2
        assert abs(p[3]) < 0.06


class TestLjungBox:
    def test_white_noise_not_rejected(self):
        _q, pvalue = ljung_box(np.random.default_rng(3).normal(size=2000), 10)
        assert pvalue > 0.01

    def test_correlated_rejected(self):
        _q, pvalue = ljung_box(ar1(0.7, n=2000), 10)
        assert pvalue < 1e-6

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            ljung_box(np.ones(5), 10)
