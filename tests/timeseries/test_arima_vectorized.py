"""The vectorized forecasting paths match the defining recursions.

``ARIMAFit.forecast`` / ``rolling_forecast`` / ``forecast_interval`` are
implemented with :func:`scipy.signal.lfilter`; these tests pin them
against straightforward per-step reference loops (the textbook
recursions) across the whole order grid, and pin the order search's
shared-differencing fast path against fitting each candidate from
scratch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.arima import ARIMA, ARIMAFit
from repro.timeseries.differencing import integrate_forecast
from repro.timeseries.order_selection import select_order

ORDERS = [
    (p, d, q) for p in range(4) for d in range(3) for q in range(4)
]


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(3)
    return np.cumsum(rng.normal(0.2, 1.0, 240)) + 50.0


def reference_forecast(fit: ARIMAFit, steps: int) -> np.ndarray:
    """Per-step recursion: future innovations at their zero mean."""
    p, d, q = fit.order
    y_hist = list(fit.train_tail[-max(p, 1):]) if p else []
    eps_hist = list(fit.eps_tail[-q:]) if q else []
    preds = np.empty(steps)
    for h in range(steps):
        pred = fit.const
        if p:
            lags = y_hist[-p:][::-1]
            pred += float(np.dot(fit.phi[: len(lags)], lags))
        if q:
            lags_e = eps_hist[-q:][::-1]
            pred += float(np.dot(fit.theta[: len(lags_e)], lags_e))
        preds[h] = pred
        if p:
            y_hist.append(pred)
        if q:
            eps_hist.append(0.0)
    return integrate_forecast(preds, fit.diff_tail) if d else preds


def reference_rolling(fit: ARIMAFit, series) -> np.ndarray:
    """Per-step walk with truth feedback on the differenced scale."""
    cont = np.asarray(series, dtype=float)
    p, d, q = fit.order
    level_tails = list(fit.diff_tail) if d else []
    y_hist = list(fit.train_tail)
    eps_hist = list(fit.eps_tail)
    preds = np.empty(cont.size)
    for t, truth in enumerate(cont):
        pred_diff = fit.const
        if p:
            lags = y_hist[-p:][::-1]
            pred_diff += float(np.dot(fit.phi[: len(lags)], lags))
        if q and eps_hist:
            lags_e = eps_hist[-q:][::-1]
            pred_diff += float(np.dot(fit.theta[: len(lags_e)], lags_e))
        preds[t] = sum(level_tails) + pred_diff
        truth_diff = truth
        for level in range(d):
            stepped = truth_diff - level_tails[level]
            level_tails[level] = truth_diff
            truth_diff = stepped
        y_hist.append(truth_diff)
        y_hist = y_hist[-(max(p, 1) + 1):]
        if q:
            eps_hist.append(truth_diff - pred_diff)
            eps_hist = eps_hist[-q:]
    return preds


def reference_psi(fit: ARIMAFit, steps: int) -> np.ndarray:
    """psi-weight recursion of the MA(inf) representation."""
    p, q = fit.phi.size, fit.theta.size
    psi = np.zeros(steps)
    for h in range(steps):
        if h == 0:
            value = 1.0
        else:
            value = float(fit.theta[h - 1]) if h - 1 < q else 0.0
            for i in range(min(p, h)):
                value += float(fit.phi[i]) * psi[h - 1 - i]
        psi[h] = value
    return psi


@pytest.mark.parametrize("order", ORDERS)
def test_forecast_matches_reference(series, order):
    fit = ARIMA(order).fit(series[:160])
    np.testing.assert_allclose(fit.forecast(12), reference_forecast(fit, 12),
                               rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("order", ORDERS)
def test_rolling_forecast_matches_reference(series, order):
    fit = ARIMA(order).fit(series[:160])
    np.testing.assert_allclose(
        fit.rolling_forecast(series[160:]), reference_rolling(fit, series[160:]),
        rtol=1e-9, atol=1e-9,
    )


@pytest.mark.parametrize("order", [(2, 1, 2), (3, 0, 1), (0, 2, 3), (1, 0, 0)])
def test_interval_psi_matches_reference(series, order):
    fit = ARIMA(order).fit(series[:160])
    point, lower, upper = fit.forecast_interval(10)
    psi = reference_psi(fit, 10)
    var = fit.sigma2 * np.cumsum(psi**2)
    if fit.order[1]:
        var = fit.sigma2 * np.cumsum(np.cumsum(psi) ** 2)
    half = 1.96 * np.sqrt(var)
    np.testing.assert_allclose(upper - point, half, rtol=1e-9)
    np.testing.assert_allclose(point - lower, half, rtol=1e-9)


def test_rolling_forecast_empty(series):
    fit = ARIMA((1, 1, 1)).fit(series[:60])
    assert fit.rolling_forecast([]).shape == (0,)


# -- the shared-differencing order search -------------------------------


def test_fit_differenced_equals_fit(series):
    from repro.timeseries.differencing import difference

    y = series[:120]
    for order in [(2, 1, 2), (0, 2, 1), (3, 0, 0)]:
        d = order[1]
        a = ARIMA(order).fit(y)
        b = ARIMA(order).fit_differenced(difference(y, d) if d else y, y)
        assert a.aic == b.aic
        assert a.const == b.const
        np.testing.assert_array_equal(a.phi, b.phi)
        np.testing.assert_array_equal(a.theta, b.theta)
        np.testing.assert_array_equal(a.train_tail, b.train_tail)
        np.testing.assert_array_equal(a.diff_tail, b.diff_tail)
        np.testing.assert_array_equal(a.eps_tail, b.eps_tail)


def test_fit_differenced_rejects_wrong_length(series):
    with pytest.raises(ValueError, match="does not match"):
        ARIMA((1, 1, 0)).fit_differenced(series[:50], series[:60])


def test_select_order_scores_identical_to_naive(series):
    """Differencing once per d must not move a single score."""
    y = series[:150]
    naive = {}
    for d in range(2):
        for p in range(3):
            for q in range(3):
                try:
                    fit = ARIMA((p, d, q)).fit(y)
                except (ValueError, np.linalg.LinAlgError):
                    continue
                if np.isfinite(fit.aic):
                    naive[(p, d, q)] = float(fit.aic)
    result = select_order(y, max_p=2, max_d=1, max_q=2)
    assert result.scores == naive
    assert result.best_order == min(naive, key=naive.get)
