"""Quality gate: every public module, class and function is documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _is_pkg in pkgutil.walk_packages(repro.__path__, "repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only charge the module that defines the object.
            if getattr(obj, "__module__", module_name) != module_name:
                continue
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not inspect.getdoc(attr):
                        undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"
