"""Quality gate: every public module, class and function is documented.

On top of the repo-wide docstring checks, the *facade* modules —
``repro``, ``repro.api`` and ``repro.obs`` — are held to a higher bar:
every export carries a runnable ``>>>`` example, and those examples are
executed (at tiny scale, against a throwaway cache) so they can never
rot.
"""

import doctest
import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _finder, name, _is_pkg in pkgutil.walk_packages(repro.__path__, "repro.")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            # Only charge the module that defines the object.
            if getattr(obj, "__module__", module_name) != module_name:
                continue
            if not inspect.getdoc(obj):
                undocumented.append(name)
            if inspect.isclass(obj):
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if inspect.isfunction(attr) and not inspect.getdoc(attr):
                        undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, f"{module_name}: undocumented public items: {undocumented}"


FACADE_MODULES = ("repro", "repro.api", "repro.obs")

DOCTEST_FLAGS = (
    doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE | doctest.IGNORE_EXCEPTION_DETAIL
)


def _facade_exports(module):
    """The classes and functions a facade module exports via ``__all__``."""
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module_name", FACADE_MODULES)
def test_facade_exports_have_examples(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name
        for name, obj in _facade_exports(module)
        if ">>>" not in (inspect.getdoc(obj) or "")
    ]
    assert not missing, f"{module_name} exports without >>> examples: {missing}"


@pytest.mark.parametrize("module_name", ("repro.api", "repro.obs"))
def test_facade_module_docstring_has_example(module_name):
    module = importlib.import_module(module_name)
    assert ">>>" in (module.__doc__ or ""), f"{module_name} module docstring lacks a >>> example"


def test_facade_doctests_execute(tmp_path, monkeypatch):
    """Run every facade example for real (tiny scale, throwaway cache)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.chdir(tmp_path)
    import repro.obs

    repro.obs.reset()  # examples assert on counters; start from zero
    runner = doctest.DocTestRunner(optionflags=DOCTEST_FLAGS)
    finder = doctest.DocTestFinder()
    module_only = doctest.DocTestFinder(recurse=False)
    attempted = 0
    seen: set[int] = set()
    for module_name in FACADE_MODULES:
        module = importlib.import_module(module_name)
        for test in module_only.find(module):
            if test.examples:
                attempted += runner.run(test).attempted
        for name, obj in _facade_exports(module):
            if id(obj) in seen:  # re-exports: run each object's examples once
                continue
            seen.add(id(obj))
            for test in finder.find(obj, name=f"{module_name}.{name}"):
                if test.examples:
                    attempted += runner.run(test).attempted
    assert runner.failures == 0, f"{runner.failures} facade doctest failures (see output)"
    assert attempted > 0, "no facade doctests were collected"
