"""Tests for dataset configuration."""

import pytest

from repro.datagen.config import DatasetConfig


class TestValidation:
    def test_defaults_valid(self):
        DatasetConfig()

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            DatasetConfig(scale=0.0)
        with pytest.raises(ValueError):
            DatasetConfig(scale=1.5)

    def test_bad_home_share(self):
        with pytest.raises(ValueError):
            DatasetConfig(home_share=0.0)

    def test_bad_pulse_prob(self):
        with pytest.raises(ValueError):
            DatasetConfig(pulse_split_prob=-0.1)

    def test_bad_gap(self):
        with pytest.raises(ValueError):
            DatasetConfig(gap_seconds=-1.0)

    def test_bad_country_pools(self):
        with pytest.raises(ValueError):
            DatasetConfig(n_attacker_countries=0)


class TestResolution:
    def test_full_profiles_unscaled(self):
        profiles = DatasetConfig.full().resolved_profiles()
        assert sum(p.total_attacks for p in profiles.values()) == 50704

    def test_scaled_profiles_shrink(self):
        profiles = DatasetConfig(scale=0.02).resolved_profiles()
        total = sum(p.total_attacks for p in profiles.values())
        assert 700 <= total <= 1400

    def test_explicit_profiles_win(self):
        from repro.botnet.profiles import default_profiles

        custom = {"pandora": default_profiles()["pandora"]}
        config = DatasetConfig(scale=0.5, profiles=custom)
        assert list(config.resolved_profiles()) == ["pandora"]

    def test_inter_collabs_scaled(self):
        full = DatasetConfig.full().resolved_inter_collabs()
        assert ("dirtjumper", "pandora", 118) in full
        small = DatasetConfig(scale=0.02).resolved_inter_collabs()
        pair = {(a, b): n for a, b, n in small}
        assert pair[("dirtjumper", "pandora")] == 2

    def test_inter_collabs_drop_missing_families(self):
        from repro.botnet.profiles import default_profiles

        only_pandora = {"pandora": default_profiles()["pandora"]}
        config = DatasetConfig(profiles=only_pandora)
        assert config.resolved_inter_collabs() == []

    def test_mega_scaled(self):
        assert DatasetConfig.full().resolved_mega()["extra_attacks"] == 1100
        small = DatasetConfig(scale=0.02).resolved_mega()
        assert small["extra_attacks"] == 22

    def test_presets(self):
        assert DatasetConfig.full().scale == 1.0
        assert DatasetConfig.small().scale == 0.02
        assert DatasetConfig.tiny().scale == 0.005
        assert DatasetConfig.tiny().with_seed(9).seed == 9
