"""Property tests: generator invariants hold across seeds."""

import numpy as np
import pytest

from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset


@pytest.fixture(scope="module", params=[1, 23, 456])
def seeded_ds(request):
    return generate_dataset(DatasetConfig.tiny(seed=request.param)), request.param


class TestInvariantsAcrossSeeds:
    def test_exact_counts_hold(self, seeded_ds):
        ds, seed = seeded_ds
        config = DatasetConfig.tiny(seed=seed)
        profiles = config.resolved_profiles()
        assert ds.n_attacks == sum(p.total_attacks for p in profiles.values())
        assert ds.bots.n_bots == sum(p.n_bots for p in profiles.values())
        assert len(ds.botnets) == sum(p.n_botnets for p in profiles.values())

    def test_sortedness(self, seeded_ds):
        ds, _seed = seeded_ds
        assert np.all(np.diff(ds.start) >= 0)
        assert np.all(ds.end >= ds.start)

    def test_full_target_coverage(self, seeded_ds):
        ds, _seed = seeded_ds
        assert np.unique(ds.target_idx).size == ds.victims.n_targets

    def test_segmentation_safety(self, seeded_ds):
        """No two attacks share (botnet, target) within the 60 s rule."""
        ds, _seed = seeded_ds
        key = ds.botnet_id.astype(np.int64) << 32 | ds.target_idx.astype(np.int64)
        order = np.lexsort((ds.start, key))
        same = key[order][1:] == key[order][:-1]
        gap = ds.start[order][1:] - ds.end[order][:-1]
        assert np.all(gap[same] > 60.0)

    def test_participant_family_consistency(self, seeded_ds):
        ds, _seed = seeded_ds
        for i in range(0, ds.n_attacks, 13):
            bots = ds.participants_of(i)
            assert bots.size >= 2
            assert np.all(ds.bots.family_idx[bots] == ds.family_idx[i])

    def test_csr_layout_valid(self, seeded_ds):
        ds, _seed = seeded_ds
        assert ds.part_offsets[0] == 0
        assert ds.part_offsets[-1] == ds.participants.size
        assert np.all(np.diff(ds.part_offsets) >= 0)
