"""Process-parallel generation is bit-identical to the serial pipeline.

The sharded pipeline *is* the canonical pipeline — every random draw is
keyed by a stream name or an attack index, never by worker identity — so
``generate_dataset(config, jobs=N)`` must return array-equal columns for
every ``N``.  These tests pin that contract, plus the serial fallback
when the platform lacks ``fork``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.par.pool as pool
from repro.core.dataset import AttackDataset
from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset
from repro.par import default_jobs, parallel_map, resolve_jobs

BOT_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "family_idx", "botnet_id", "recruit_ts",
)
VICTIM_COLS = (
    "ip", "lat", "lon", "country_idx", "city_idx", "org_idx", "asn",
    "owner_family_idx",
)


def assert_identical(a: AttackDataset, b: AttackDataset) -> None:
    """Full-dataset array equality: attacks, bots, victims, botnets."""
    assert a.attack_columns_equal(b)
    assert np.array_equal(a.part_offsets, b.part_offsets)
    assert np.array_equal(a.participants, b.participants)
    for name in ("truth_collab_group", "truth_collab_kind", "truth_chain_id",
                 "truth_symmetric", "truth_residual_km"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for name in BOT_COLS:
        assert np.array_equal(getattr(a.bots, name), getattr(b.bots, name)), name
    for name in VICTIM_COLS:
        assert np.array_equal(getattr(a.victims, name), getattr(b.victims, name)), name
    assert a.botnets == b.botnets


@pytest.fixture(scope="module")
def serial_ds():
    return generate_dataset(DatasetConfig.tiny(seed=13), jobs=1)


@pytest.mark.parametrize("jobs", [2, 5])
def test_parallel_generation_matches_serial(serial_ds, jobs):
    parallel = generate_dataset(DatasetConfig.tiny(seed=13), jobs=jobs)
    assert_identical(serial_ds, parallel)


def test_fork_unavailable_falls_back_to_serial(serial_ds, monkeypatch):
    import repro.obs as obs

    monkeypatch.setattr(pool, "fork_available", lambda: False)
    obs.reset()
    ds = generate_dataset(DatasetConfig.tiny(seed=13), jobs=4)
    # ran serially (the gauge records the resolved worker count) ...
    assert obs.registry().gauge("par.jobs").value == 1.0
    # ... and still produced the exact same dataset
    assert_identical(serial_ds, ds)
    obs.reset()


def test_parallel_map_preserves_item_order():
    items = list(range(37))
    out = parallel_map(_double, items, jobs=4, payload=10)
    assert out == [10 * i for i in items]
    assert parallel_map(_double, items, jobs=1, payload=10) == out


def _double(payload, item):
    return payload * item


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) == default_jobs()
    assert 1 <= default_jobs() <= 8
    with pytest.raises(ValueError):
        resolve_jobs(0)
