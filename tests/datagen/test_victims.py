"""Tests for victim registry construction."""

import numpy as np
import pytest

from repro.datagen.config import DatasetConfig
from repro.datagen.victims import build_victims, victim_country_pool
from repro.geo.ipam import IPAllocator, SequentialAssigner
from repro.geo.mapping import GeoIPService
from repro.geo.world import World
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def built():
    streams = SeededStreams(23)
    world = World.build(streams)
    alloc = IPAllocator(world, streams)
    geoip = GeoIPService(world, alloc)
    assigner = SequentialAssigner(alloc)
    profiles = DatasetConfig(scale=0.05).resolved_profiles()
    registry, pools = build_victims(
        profiles, world, assigner, geoip, streams.stream("victims"),
        n_victim_countries=84, mega_family="dirtjumper",
    )
    return world, profiles, registry, pools


class TestCountryPool:
    def test_pool_size(self, built):
        world, profiles, *_ = built
        pool = victim_country_pool(world, profiles, 84)
        assert len(pool) == 84
        assert len(set(pool)) == 84

    def test_pool_includes_all_table5_tops(self, built):
        world, profiles, *_ = built
        pool = set(victim_country_pool(world, profiles, 84))
        for profile in profiles.values():
            for cc, _w in profile.target_countries:
                assert world.country_by_code(cc).index in pool


class TestRegistry:
    def test_total_targets(self, built):
        _w, profiles, registry, _pools = built
        expected = sum(p.n_targets for p in profiles.values() if p.active)
        assert registry.n_targets == expected

    def test_unique_ips(self, built):
        *_, registry, _pools = built
        assert np.unique(registry.ip).size == registry.n_targets

    def test_pool_coverage_is_union(self, built):
        _w, _p, registry, _pools = built
        assert np.unique(registry.country_idx).size == 84

    def test_owners_assigned(self, built):
        *_, registry, pools = built
        assert np.all(registry.owner_family_idx >= 0)
        total = sum(p.n_targets for p in pools.values())
        assert total == registry.n_targets

    def test_family_pools_disjoint(self, built):
        *_, pools = built
        seen = set()
        for pool in pools.values():
            mine = set(int(t) for t in pool.target_indices)
            assert not (mine & seen)
            seen |= mine

    def test_mega_targets_in_russia(self, built):
        world, _p, registry, pools = built
        mega = pools["dirtjumper"].mega_targets
        assert mega.size > 0
        ru = world.country_by_code("RU").index
        assert np.all(registry.country_idx[mega] == ru)
        assert np.unique(registry.org_idx[mega]).size == 1  # one subnet

    def test_family_country_counts(self, built):
        world, profiles, registry, pools = built
        for name, pool in pools.items():
            profile = profiles[name]
            expected = min(profile.n_target_countries, profile.n_targets)
            assert pool.country_ids.size >= min(expected, 5)
            assert abs(pool.country_ids.size - expected) <= 3

    def test_sample_target_valid(self, built):
        *_, pools = built
        rng = np.random.default_rng(0)
        pool = pools["pandora"]
        for _ in range(20):
            t = pool.sample_target(rng)
            assert t in set(int(x) for x in pool.target_indices)
