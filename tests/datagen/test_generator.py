"""End-to-end generator invariants on the tiny dataset."""

import numpy as np

from repro.datagen.config import DatasetConfig
from repro.datagen.generator import generate_dataset


class TestShape:
    def test_attack_count_matches_profiles(self, tiny_ds, tiny_config):
        profiles = tiny_config.resolved_profiles()
        expected = sum(p.total_attacks for p in profiles.values())
        assert tiny_ds.n_attacks == expected

    def test_bot_count_matches_profiles(self, tiny_ds, tiny_config):
        profiles = tiny_config.resolved_profiles()
        assert tiny_ds.bots.n_bots == sum(p.n_bots for p in profiles.values())

    def test_botnet_count(self, tiny_ds, tiny_config):
        profiles = tiny_config.resolved_profiles()
        assert len(tiny_ds.botnets) == sum(p.n_botnets for p in profiles.values())

    def test_sorted_by_start(self, tiny_ds):
        assert np.all(np.diff(tiny_ds.start) >= 0)

    def test_per_family_protocol_counts_exact(self, tiny_ds, tiny_config):
        from repro.core.overview import protocol_breakdown

        profiles = tiny_config.resolved_profiles()
        measured = {(p, f): c for p, f, c in protocol_breakdown(tiny_ds)}
        for name, profile in profiles.items():
            for proto, count in profile.protocol_counts.items():
                assert measured.get((proto, name), 0) == count


class TestIntegrity:
    def test_every_target_attacked(self, tiny_ds):
        assert np.unique(tiny_ds.target_idx).size == tiny_ds.victims.n_targets

    def test_participants_in_range(self, tiny_ds):
        assert tiny_ds.participants.min() >= 0
        assert tiny_ds.participants.max() < tiny_ds.bots.n_bots

    def test_participants_family_consistent(self, tiny_ds):
        # Every participant of an attack belongs to the attacking family.
        for i in range(0, tiny_ds.n_attacks, 7):
            fam = tiny_ds.family_idx[i]
            bots = tiny_ds.participants_of(i)
            assert np.all(tiny_ds.bots.family_idx[bots] == fam)

    def test_magnitude_equals_participant_count(self, tiny_ds):
        counts = np.diff(tiny_ds.part_offsets)
        assert np.array_equal(counts, tiny_ds.magnitude)

    def test_botnet_ids_belong_to_family(self, tiny_ds):
        botnet_family = {rec.botnet_id: rec.family for rec in tiny_ds.botnets}
        for i in range(0, tiny_ds.n_attacks, 5):
            fam = tiny_ds.family_name(int(tiny_ds.family_idx[i]))
            assert botnet_family[int(tiny_ds.botnet_id[i])] == fam

    def test_no_mergeable_attacks(self, tiny_ds):
        # The 60 s rule must not be able to merge two recorded attacks:
        # same (botnet, target) pairs are separated by more than 60 s.
        key = tiny_ds.botnet_id.astype(np.int64) << 32 | tiny_ds.target_idx.astype(np.int64)
        order = np.lexsort((tiny_ds.start, key))
        k = key[order]
        same = k[1:] == k[:-1]
        gap = tiny_ds.start[order][1:] - tiny_ds.end[order][:-1]
        assert np.all(gap[same] > 60.0)

    def test_attack_starts_inside_window(self, tiny_ds):
        assert np.all(tiny_ds.start >= tiny_ds.window.start)

    def test_durations_positive(self, tiny_ds):
        assert np.all(tiny_ds.durations > 0)


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate_dataset(DatasetConfig.tiny(seed=99))
        b = generate_dataset(DatasetConfig.tiny(seed=99))
        assert np.array_equal(a.start, b.start)
        assert np.array_equal(a.participants, b.participants)
        assert np.array_equal(a.bots.ip, b.bots.ip)
        assert np.array_equal(a.target_idx, b.target_idx)

    def test_different_seed_differs(self):
        a = generate_dataset(DatasetConfig.tiny(seed=99))
        b = generate_dataset(DatasetConfig.tiny(seed=100))
        assert not np.array_equal(a.start, b.start)


class TestGroundTruth:
    def test_truth_columns_present(self, tiny_ds):
        assert tiny_ds.truth_collab_kind.size == tiny_ds.n_attacks
        assert tiny_ds.truth_symmetric.dtype == bool

    def test_staged_collabs_exist(self, tiny_ds):
        assert np.any(tiny_ds.truth_collab_group >= 0)

    def test_inter_family_groups_span_families(self, tiny_ds):
        inter = tiny_ds.truth_collab_kind == 2
        groups = np.unique(tiny_ds.truth_collab_group[inter])
        for g in groups:
            members = tiny_ds.truth_collab_group == g
            assert np.unique(tiny_ds.family_idx[members]).size >= 2
