"""Tests for the hourly report files."""

import json

import pytest

from repro.monitor.reports import read_hourly_reports, write_hourly_reports


class TestWrite:
    def test_streams_per_family(self, tiny_ds, tmp_path):
        written = write_hourly_reports(tiny_ds, tmp_path, max_hours=20)
        assert written
        for family, count in written.items():
            path = tmp_path / f"{family}.jsonl"
            if count:
                assert path.exists()
                assert len(path.read_text().splitlines()) == count

    def test_record_schema(self, tiny_ds, tmp_path):
        write_hourly_reports(tiny_ds, tmp_path, families=["dirtjumper"], max_hours=5)
        lines = (tmp_path / "dirtjumper.jsonl").read_text().splitlines()
        record = json.loads(lines[0])
        assert record["family"] == "dirtjumper"
        assert record["n_bots"] > 0
        assert all(len(cc) == 2 for cc in record["countries"])
        assert "bot_ips" not in record

    def test_include_ips(self, tiny_ds, tmp_path):
        write_hourly_reports(
            tiny_ds, tmp_path, families=["dirtjumper"], max_hours=2, include_ips=True
        )
        record = json.loads(
            (tmp_path / "dirtjumper.jsonl").read_text().splitlines()[0]
        )
        assert len(record["bot_ips"]) == record["n_bots"]
        assert record["bot_ips"][0].count(".") == 3

    def test_max_hours_cap(self, tiny_ds, tmp_path):
        written = write_hourly_reports(tiny_ds, tmp_path, families=["dirtjumper"], max_hours=3)
        assert written["dirtjumper"] <= 3


class TestRead:
    def test_roundtrip_counts(self, tiny_ds, tmp_path):
        write_hourly_reports(tiny_ds, tmp_path, families=["dirtjumper"], max_hours=10)
        snapshots = read_hourly_reports(tmp_path / "dirtjumper.jsonl")
        assert snapshots
        assert all(s.family == "dirtjumper" for s in snapshots)
        times = [s.timestamp for s in snapshots]
        assert times == sorted(times)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{oops\n")
        with pytest.raises(ValueError):
            read_hourly_reports(path)
