"""Tests for the monitoring collector."""

from repro.monitor.collector import Collector
from repro.monitor.labeling import FamilyLabeler
from repro.monitor.schemas import AttackPulse, Protocol
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventKind


def pulse(botnet=1, family="pandora", target=1, start=0.0, end=10.0, tag=0):
    return AttackPulse(
        botnet_id=botnet, family=family, target_index=target,
        start=start, end=end, protocol=Protocol.HTTP, attack_tag=tag,
    )


def make_collector():
    return Collector(FamilyLabeler({1: "pandora", 2: "dirtjumper"}))


class TestCollector:
    def test_engine_integration(self):
        engine = SimulationEngine()
        collector = make_collector()
        collector.attach(engine)
        engine.schedule(0.0, EventKind.ATTACK_PULSE, pulse(start=0, end=10, tag=1))
        engine.schedule(200.0, EventKind.ATTACK_PULSE, pulse(start=200, end=210, tag=2))
        engine.run()
        attacks = collector.segment()
        assert collector.n_pulses == 2
        assert len(attacks) == 2

    def test_unattributed_pulse_dropped(self):
        collector = make_collector()
        collector.ingest([pulse(botnet=99)])
        assert collector.n_pulses == 0
        assert collector.n_dropped == 1

    def test_label_overrides_tag(self):
        # The labeler's verdict wins over the (possibly wrong) tag family.
        collector = make_collector()
        collector.ingest([pulse(botnet=2, family="wrong-tag")])
        attacks = collector.segment()
        assert attacks[0].family == "dirtjumper"

    def test_merging_through_collector(self):
        collector = make_collector()
        collector.ingest([pulse(start=0, end=10, tag=1), pulse(start=40, end=50, tag=1)])
        attacks = collector.segment()
        assert len(attacks) == 1
        assert attacks[0].pulse_count == 2
