"""Tests for the monitoring collector."""

from repro.monitor.collector import Collector
from repro.monitor.labeling import FamilyLabeler
from repro.monitor.schemas import AttackPulse, Protocol
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventKind


def pulse(botnet=1, family="pandora", target=1, start=0.0, end=10.0, tag=0):
    return AttackPulse(
        botnet_id=botnet, family=family, target_index=target,
        start=start, end=end, protocol=Protocol.HTTP, attack_tag=tag,
    )


def make_collector():
    return Collector(FamilyLabeler({1: "pandora", 2: "dirtjumper"}))


class TestCollector:
    def test_engine_integration(self):
        engine = SimulationEngine()
        collector = make_collector()
        collector.attach(engine)
        engine.schedule(0.0, EventKind.ATTACK_PULSE, pulse(start=0, end=10, tag=1))
        engine.schedule(200.0, EventKind.ATTACK_PULSE, pulse(start=200, end=210, tag=2))
        engine.run()
        attacks = collector.segment()
        assert collector.n_pulses == 2
        assert len(attacks) == 2

    def test_unattributed_pulse_dropped(self):
        collector = make_collector()
        collector.ingest([pulse(botnet=99)])
        assert collector.n_pulses == 0
        assert collector.n_dropped == 1

    def test_label_overrides_tag(self):
        # The labeler's verdict wins over the (possibly wrong) tag family.
        collector = make_collector()
        collector.ingest([pulse(botnet=2, family="wrong-tag")])
        attacks = collector.segment()
        assert attacks[0].family == "dirtjumper"

    def test_merging_through_collector(self):
        collector = make_collector()
        collector.ingest([pulse(start=0, end=10, tag=1), pulse(start=40, end=50, tag=1)])
        attacks = collector.segment()
        assert len(attacks) == 1
        assert attacks[0].pulse_count == 2


class TestDrainSegments:
    def test_drain_none_flushes_everything(self):
        collector = make_collector()
        collector.ingest([pulse(start=0, end=10), pulse(start=500, end=510)])
        drained = collector.drain_segments()
        assert len(drained) == 2
        assert collector.n_pulses == 0
        assert collector.segment() == []

    def test_open_attack_retained(self):
        # end=100, gap=60: a pulse at t < 160 could still extend it, so
        # draining at up_to=150 must keep it buffered.
        collector = make_collector()
        collector.ingest([pulse(start=0, end=100)])
        assert collector.drain_segments(up_to=150) == []
        assert collector.n_pulses == 1
        closed = collector.drain_segments(up_to=161)
        assert len(closed) == 1

    def test_retained_attack_extends_on_later_pulse(self):
        collector = make_collector()
        collector.ingest([pulse(start=0, end=100, tag=1)])
        collector.drain_segments(up_to=150)  # still open, stays buffered
        collector.ingest([pulse(start=140, end=200, tag=1)])
        [attack] = collector.drain_segments()
        assert attack.start == 0
        assert attack.end == 200
        assert attack.pulse_count == 2

    def test_incremental_drains_match_batch_segment(self):
        pulses = [
            pulse(start=0, end=10, tag=1),
            pulse(start=40, end=55, tag=1),     # merges with the first
            pulse(start=400, end=420, tag=2),   # separate attack
            pulse(botnet=2, family="dirtjumper", start=30, end=90, tag=3),
            pulse(start=900, end=950, tag=4),
        ]
        batch = make_collector()
        batch.ingest(pulses)
        expected = batch.segment()

        inc = make_collector()
        drained = []
        for lo, hi in [(0, 100), (100, 300), (300, 600), (600, None)]:
            inc.ingest(
                [p for p in pulses if p.start >= lo and (hi is None or p.start < hi)]
            )
            drained.extend(inc.drain_segments(up_to=hi))
        drained.sort(key=lambda a: (a.start, a.botnet_id, a.target_index))
        got = [(a.botnet_id, a.target_index, a.start, a.end, a.pulse_count) for a in drained]
        want = [(a.botnet_id, a.target_index, a.start, a.end, a.pulse_count) for a in expected]
        assert got == want
