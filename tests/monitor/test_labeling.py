"""Tests for family attribution."""

import numpy as np
import pytest

from repro.monitor.labeling import FamilyLabeler


@pytest.fixture()
def labeler():
    return FamilyLabeler({1: "pandora", 2: "pandora", 3: "dirtjumper"})


class TestLabeler:
    def test_label(self, labeler):
        assert labeler.label(1) == "pandora"
        assert labeler.label(3) == "dirtjumper"

    def test_unknown_raises(self, labeler):
        with pytest.raises(KeyError):
            labeler.label(99)

    def test_families_sorted(self, labeler):
        assert labeler.families == ["dirtjumper", "pandora"]
        assert labeler.n_botnets == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FamilyLabeler({})


class TestNoise:
    def test_zero_noise_identity(self, labeler):
        noisy = labeler.with_noise(np.random.default_rng(0), 0.0)
        assert all(noisy.label(b) == labeler.label(b) for b in (1, 2, 3))

    def test_full_noise_flips_everything(self, labeler):
        noisy = labeler.with_noise(np.random.default_rng(0), 1.0)
        assert all(noisy.label(b) != labeler.label(b) for b in (1, 2, 3))

    def test_rate_validation(self, labeler):
        with pytest.raises(ValueError):
            labeler.with_noise(np.random.default_rng(0), 1.5)

    def test_single_family_unchanged(self):
        single = FamilyLabeler({1: "pandora"})
        noisy = single.with_noise(np.random.default_rng(0), 1.0)
        assert noisy.label(1) == "pandora"
