"""Tests for the Table I schema types."""

import pytest

from repro.monitor.schemas import (
    AttackPulse,
    BotnetRecord,
    BotRecord,
    DDoSAttackRecord,
    Protocol,
)


class TestProtocol:
    def test_seven_traffic_types(self):
        # Table III: "# of traffic types: 7".
        assert len(Protocol) == 7

    def test_from_name(self):
        assert Protocol.from_name("http") is Protocol.HTTP
        assert Protocol.from_name("SYN") is Protocol.SYN

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            Protocol.from_name("quic")


class TestRecords:
    def _attack(self, start=100.0, end=400.0, botnet=7) -> DDoSAttackRecord:
        return DDoSAttackRecord(
            ddos_id=1,
            botnet_id=botnet,
            family="pandora",
            category=Protocol.HTTP,
            target_ip=0x01020304,
            timestamp=start,
            end_time=end,
            asn=64500,
            country_code="RU",
            city="RU-city-000",
            organization="hosting-ru-000",
            lat=55.0,
            lon=37.0,
            magnitude=42,
        )

    def test_duration_and_ip(self):
        rec = self._attack()
        assert rec.duration == 300.0
        assert rec.target_ip_str == "1.2.3.4"

    def test_overlaps(self):
        a = self._attack(100.0, 400.0)
        b = self._attack(350.0, 500.0)
        c = self._attack(400.0, 500.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)  # half-open touch is not overlap

    def test_bot_record_activity(self):
        bot = BotRecord(
            bot_index=0, ip=1, botnet_id=1, family="x", country_code="US",
            city="c", organization="o", asn=1, lat=0.0, lon=0.0,
            recruited_at=100.0, left_at=200.0,
        )
        assert bot.active_at(100.0)
        assert bot.active_at(150.0)
        assert not bot.active_at(200.0)

    def test_botnet_record_ip(self):
        rec = BotnetRecord(1, "pandora", 0x7F000001 + 1, 0.0, 1.0)
        assert rec.controller_ip_str.count(".") == 3

    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            AttackPulse(
                botnet_id=1, family="x", target_index=0,
                start=10.0, end=5.0, protocol=Protocol.HTTP, attack_tag=0,
            )
