"""Tests for lazy hourly snapshots."""

import numpy as np
import pytest

from repro.monitor.snapshots import iter_hourly_snapshots
from repro.simulation.clock import SECONDS_PER_HOUR, ObservationWindow


def make_window(hours=48):
    start = 1_000_000_000
    return ObservationWindow(start=start, end=start + hours * SECONDS_PER_HOUR)


class TestSnapshots:
    def test_cumulative_24h_window(self):
        window = make_window(48)
        starts = np.array([window.start + 1800.0, window.start + 30 * 3600.0])
        offsets = np.array([0, 2, 4])
        participants = np.array([10, 11, 11, 12])
        snaps = list(
            iter_hourly_snapshots(starts, offsets, participants, window, family="f")
        )
        by_hour = {window.hour_index(s.timestamp): s for s in snaps}
        # One hour in: only the first attack's bots.
        assert by_hour[1].bot_indices.tolist() == [10, 11]
        # Hour 31: the first attack is 30.5 h old (outside the 24 h
        # lookback), the second one is fresh.
        assert by_hour[31].bot_indices.tolist() == [11, 12]
        # Hour 26: first attack expired, second not yet started -> no
        # snapshot is emitted for that hour.
        assert 26 not in by_hour

    def test_union_is_deduplicated(self):
        window = make_window(4)
        starts = np.array([window.start + 100.0, window.start + 200.0])
        offsets = np.array([0, 2, 4])
        participants = np.array([5, 6, 6, 7])
        snaps = list(iter_hourly_snapshots(starts, offsets, participants, window))
        assert snaps[0].bot_indices.tolist() == [5, 6, 7]

    def test_skip_empty(self):
        window = make_window(10)
        starts = np.array([window.start + 100.0])
        offsets = np.array([0, 1])
        participants = np.array([1])
        snaps = list(iter_hourly_snapshots(starts, offsets, participants, window))
        # Activity covers the first 24 hours after the attack, but the
        # window is only 10h long; every snapshot carries the bot.
        assert len(snaps) == 10
        snaps_all = list(
            iter_hourly_snapshots(
                starts, offsets, participants, make_window(40), skip_empty=False
            )
        )
        assert any(s.n_bots == 0 for s in snaps_all)

    def test_unsorted_rejected(self):
        window = make_window(4)
        starts = np.array([window.start + 200.0, window.start + 100.0])
        offsets = np.array([0, 1, 2])
        participants = np.array([1, 2])
        with pytest.raises(ValueError):
            list(iter_hourly_snapshots(starts, offsets, participants, window))

    def test_bad_offsets_rejected(self):
        window = make_window(4)
        with pytest.raises(ValueError):
            list(
                iter_hourly_snapshots(
                    np.array([window.start + 1.0]), np.array([0]), np.array([1]), window
                )
            )
