"""Tests for the 60-second segmentation rule."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.schemas import AttackPulse, Protocol
from repro.monitor.segmentation import segment_pulses


def pulse(botnet=1, target=1, start=0.0, end=10.0, tag=0, proto=Protocol.HTTP):
    return AttackPulse(
        botnet_id=botnet, family="f", target_index=target,
        start=start, end=end, protocol=proto, attack_tag=tag,
    )


class TestMerging:
    def test_merges_within_gap(self):
        out = segment_pulses([pulse(start=0, end=10, tag=1), pulse(start=50, end=60, tag=1)])
        assert len(out) == 1
        assert out[0].start == 0 and out[0].end == 60
        assert out[0].pulse_count == 2

    def test_splits_beyond_gap(self):
        out = segment_pulses([pulse(start=0, end=10), pulse(start=80, end=90)])
        assert len(out) == 2

    def test_exact_boundary_merges(self):
        # Gap of exactly 60 s still merges (the rule is "exceeds 60 s").
        out = segment_pulses([pulse(start=0, end=10), pulse(start=70, end=80)])
        assert len(out) == 1

    def test_overlapping_pulses_merge(self):
        out = segment_pulses([pulse(start=0, end=100), pulse(start=20, end=50)])
        assert len(out) == 1
        assert out[0].end == 100

    def test_different_botnets_never_merge(self):
        out = segment_pulses([pulse(botnet=1), pulse(botnet=2)])
        assert len(out) == 2

    def test_different_targets_never_merge(self):
        out = segment_pulses([pulse(target=1), pulse(target=2)])
        assert len(out) == 2

    def test_tags_accumulated(self):
        out = segment_pulses([pulse(tag=5), pulse(start=5, end=8, tag=6)])
        assert out[0].tags == [5, 6]

    def test_custom_gap(self):
        pulses = [pulse(start=0, end=10), pulse(start=25, end=30)]
        assert len(segment_pulses(pulses, gap_seconds=10)) == 2
        assert len(segment_pulses(pulses, gap_seconds=20)) == 1

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            segment_pulses([], gap_seconds=-1)

    def test_output_sorted_by_start(self):
        pulses = [pulse(botnet=2, start=100, end=110), pulse(botnet=1, start=0, end=10)]
        out = segment_pulses(pulses)
        assert [a.start for a in out] == sorted(a.start for a in out)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),   # botnet
            st.integers(min_value=1, max_value=3),   # target
            st.floats(min_value=0, max_value=5000, allow_nan=False),  # start
            st.floats(min_value=1, max_value=300, allow_nan=False),   # length
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=150)
def test_segmentation_invariants(specs):
    pulses = [
        pulse(botnet=b, target=t, start=s, end=s + ln, tag=i)
        for i, (b, t, s, ln) in enumerate(specs)
    ]
    out = segment_pulses(pulses)
    # Never more attacks than pulses; every pulse accounted for exactly once.
    assert 1 <= len(out) <= len(pulses)
    assert sum(a.pulse_count for a in out) == len(pulses)
    all_tags = sorted(tag for a in out for tag in a.tags)
    assert all_tags == sorted(set(all_tags))
    # Within a (botnet, target) group, attacks are separated by > 60 s.
    by_key = {}
    for a in out:
        by_key.setdefault((a.botnet_id, a.target_index), []).append(a)
    for group in by_key.values():
        group.sort(key=lambda a: a.start)
        for prev, cur in zip(group, group[1:]):
            assert cur.start - prev.end > 60.0
