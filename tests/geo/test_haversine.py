"""Unit and property tests for the great-circle geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.haversine import (
    EARTH_RADIUS_KM,
    direction_sign,
    dispersion_km,
    geographic_center,
    haversine_km,
    signed_distances_km,
)

lat_st = st.floats(min_value=-85.0, max_value=85.0, allow_nan=False)
lon_st = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)


class TestHaversine:
    def test_zero_distance_same_point(self):
        assert haversine_km(48.85, 2.35, 48.85, 2.35) == pytest.approx(0.0, abs=1e-9)

    def test_known_distance_paris_london(self):
        # Paris (48.8566, 2.3522) to London (51.5074, -0.1278): ~344 km.
        d = haversine_km(48.8566, 2.3522, 51.5074, -0.1278)
        assert d == pytest.approx(344.0, rel=0.02)

    def test_known_distance_equator_quarter(self):
        # A quarter of the equator.
        d = haversine_km(0.0, 0.0, 0.0, 90.0)
        assert d == pytest.approx(np.pi * EARTH_RADIUS_KM / 2.0, rel=1e-6)

    def test_vectorised_matches_scalar(self):
        lats = np.array([10.0, -20.0, 45.0])
        lons = np.array([5.0, 100.0, -60.0])
        batch = haversine_km(lats, lons, 0.0, 0.0)
        for i in range(3):
            assert batch[i] == pytest.approx(
                haversine_km(float(lats[i]), float(lons[i]), 0.0, 0.0)
            )

    @given(lat_st, lon_st, lat_st, lon_st)
    @settings(max_examples=200)
    def test_symmetric_and_bounded(self, lat1, lon1, lat2, lon2):
        d12 = haversine_km(lat1, lon1, lat2, lon2)
        d21 = haversine_km(lat2, lon2, lat1, lon1)
        assert d12 == pytest.approx(d21, abs=1e-6)
        assert 0.0 <= d12 <= np.pi * EARTH_RADIUS_KM + 1e-6

    @given(lat_st, lon_st)
    @settings(max_examples=100)
    def test_identity(self, lat, lon):
        assert haversine_km(lat, lon, lat, lon) == pytest.approx(0.0, abs=1e-6)


class TestGeographicCenter:
    def test_single_point(self):
        lat, lon = geographic_center([33.0], [44.0])
        assert lat == pytest.approx(33.0, abs=1e-9)
        assert lon == pytest.approx(44.0, abs=1e-9)

    def test_symmetric_pair_on_equator(self):
        lat, lon = geographic_center([0.0, 0.0], [-10.0, 10.0])
        assert lat == pytest.approx(0.0, abs=1e-9)
        assert lon == pytest.approx(0.0, abs=1e-9)

    def test_antimeridian_pair(self):
        # Points at lon 179 and -179 should centre near the antimeridian,
        # not near lon 0.
        _lat, lon = geographic_center([0.0, 0.0], [179.0, -179.0])
        assert abs(abs(lon) - 180.0) < 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geographic_center([], [])


class TestDirectionSign:
    def test_east_is_positive(self):
        assert direction_sign([0.0], [10.0], 0.0, 0.0)[0] == 1.0

    def test_west_is_negative(self):
        assert direction_sign([0.0], [-10.0], 0.0, 0.0)[0] == -1.0

    def test_north_on_meridian_is_positive(self):
        assert direction_sign([10.0], [0.0], 0.0, 0.0)[0] == 1.0

    def test_south_on_meridian_is_negative(self):
        assert direction_sign([-10.0], [0.0], 0.0, 0.0)[0] == -1.0

    def test_centre_point_is_zero(self):
        assert direction_sign([0.0], [0.0], 0.0, 0.0)[0] == 0.0

    def test_antimeridian_wrap(self):
        # A point just across the antimeridian (lon -179 vs centre 179)
        # lies to the east.
        assert direction_sign([0.0], [-179.0], 0.0, 179.0)[0] == 1.0


class TestDispersion:
    def test_perfectly_mirrored_pair_is_near_zero(self):
        value = dispersion_km([10.0, -10.0], [20.0, -20.0])
        assert value < 1.0

    def test_asymmetric_cloud_is_large(self):
        # Two western points spread far north/south versus one eastern
        # point on the equator: their full 2-D distances outweigh the
        # eastern contribution, leaving a large signed residual.  (A
        # purely east-west configuration would cancel around the centre.)
        lats = [30.0, -30.0, 0.0]
        lons = [-20.0, -20.0, 40.0]
        assert dispersion_km(lats, lons) > 500.0

    def test_single_bot_is_zero(self):
        assert dispersion_km([42.0], [13.0]) == 0.0

    def test_absolute_flag(self):
        lats = [0.0, 0.0, 5.0]
        lons = [-1.0, 1.0, -40.0]
        signed = dispersion_km(lats, lons, absolute=False)
        assert dispersion_km(lats, lons) == pytest.approx(abs(signed))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dispersion_km([], [])

    @given(
        st.lists(st.tuples(lat_st, lon_st), min_size=2, max_size=12)
    )
    @settings(max_examples=100)
    def test_signed_sum_matches_parts(self, points):
        lats = np.array([p[0] for p in points])
        lons = np.array([p[1] for p in points])
        center = geographic_center(lats, lons)
        total = float(np.sum(signed_distances_km(lats, lons, *center)))
        assert dispersion_km(lats, lons) == pytest.approx(abs(total), abs=1e-6)
