"""Tests for the synthetic GeoIP service."""

import numpy as np
import pytest

from repro.geo.ipam import IPAllocator
from repro.geo.mapping import GeoIPService, ip_jitter_many
from repro.geo.world import World
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def service():
    streams = SeededStreams(5)
    world = World.build(streams)
    alloc = IPAllocator(world, streams)
    return GeoIPService(world, alloc)


class TestJitter:
    def test_deterministic(self):
        a = ip_jitter_many([123456, 99, 2**31])
        b = ip_jitter_many([123456, 99, 2**31])
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_distinct_ips_differ(self):
        dlat, dlon = ip_jitter_many(np.arange(1000, dtype=np.uint64))
        # Collisions in the jitter would collapse hosts onto one point.
        assert np.unique(np.round(dlat, 9)).size > 990

    def test_roughly_centered(self):
        dlat, dlon = ip_jitter_many(np.arange(20000, dtype=np.uint64))
        assert abs(float(dlat.mean())) < 0.02
        assert abs(float(dlon.mean())) < 0.02
        assert 0.2 < float(dlat.std()) < 0.5


class TestLookup:
    def test_fields_consistent(self, service):
        block = service.allocator.blocks()[0]
        rec = service.lookup(block.start)
        org = service.world.organizations[rec.org_index]
        assert rec.organization == org.name
        assert rec.asn == org.asn
        assert rec.country_index == org.country_index
        assert -85 <= rec.lat <= 85
        assert -180 <= rec.lon <= 180

    def test_same_ip_same_answer(self, service):
        block = service.allocator.blocks()[4]
        a = service.lookup(block.start + 5)
        b = service.lookup(block.start + 5)
        assert (a.lat, a.lon, a.asn) == (b.lat, b.lon, b.asn)

    def test_unallocated_raises(self, service):
        with pytest.raises(KeyError):
            service.lookup(10)  # 0.0.0.10 is reserved space

    def test_coords_for_city_matches_lookup(self, service):
        block = service.allocator.blocks()[2]
        org = service.world.organizations[block.org_index]
        ips = np.arange(block.start, block.start + 8, dtype=np.uint64)
        lats, lons = service.coords_for_city(org.city_index, ips)
        for i, ip in enumerate(ips):
            rec = service.lookup(int(ip))
            assert rec.lat == pytest.approx(lats[i])
            assert rec.lon == pytest.approx(lons[i])

    def test_lookup_many_order(self, service):
        block = service.allocator.blocks()[1]
        ips = [block.start + 3, block.start, block.start + 7]
        recs = service.lookup_many(ips)
        assert [r.ip for r in recs] == ips
