"""Tests for the synthetic world model."""

import numpy as np
import pytest

from repro.geo.world import COUNTRY_TABLE, World
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def world():
    return World.build(SeededStreams(3))


class TestCountryTable:
    def test_codes_unique(self):
        codes = [row[0] for row in COUNTRY_TABLE]
        assert len(codes) == len(set(codes))

    def test_enough_countries_for_the_paper(self):
        # Table III needs 186 attacker countries.
        assert len(COUNTRY_TABLE) >= 186

    def test_coordinates_in_range(self):
        for code, _name, lat, lon, weight in COUNTRY_TABLE:
            assert -90 <= lat <= 90, code
            assert -180 <= lon <= 180, code
            assert weight > 0, code

    def test_key_paper_countries_present(self):
        codes = {row[0] for row in COUNTRY_TABLE}
        # Every country named in Table V must exist.
        needed = {"US", "RU", "DE", "UA", "NL", "FR", "ES", "VE", "SG", "IN",
                  "PK", "BW", "TH", "ID", "CN", "KR", "HK", "JP", "MX", "UY",
                  "CL", "CA", "GB", "KG"}
        assert needed <= codes


class TestWorldBuild:
    def test_deterministic(self):
        w1 = World.build(SeededStreams(3))
        w2 = World.build(SeededStreams(3))
        assert [c.name for c in w1.cities] == [c.name for c in w2.cities]
        assert [o.asn for o in w1.organizations] == [o.asn for o in w2.organizations]

    def test_seed_changes_world(self):
        w1 = World.build(SeededStreams(3))
        w2 = World.build(SeededStreams(4))
        assert [o.asn for o in w1.organizations] != [o.asn for o in w2.organizations]

    def test_every_country_has_cities_and_orgs(self, world):
        for country in world.countries:
            assert len(world.cities_of(country.index)) >= 2
            assert len(world.organizations_of(country.index)) >= 2

    def test_org_city_consistency(self, world):
        for org in world.organizations:
            city = world.cities[org.city_index]
            assert city.country_index == org.country_index

    def test_asns_unique(self, world):
        asns = [o.asn for o in world.organizations]
        assert len(asns) == len(set(asns))

    def test_lookup_by_code(self, world):
        us = world.country_by_code("US")
        assert us.name == "United States"
        assert world.has_country("US")
        assert not world.has_country("ZZ")
        with pytest.raises(KeyError):
            world.country_by_code("ZZ")

    def test_weights_normalised(self, world):
        idx, w = world.city_weights_of(world.country_by_code("DE").index)
        assert idx.size == w.size
        assert np.isclose(w.sum(), 1.0)
        idx, w = world.org_weights_of(world.country_by_code("DE").index)
        assert np.isclose(w.sum(), 1.0)

    def test_city_counts_scale_with_weight(self, world):
        us = world.country_by_code("US")
        small = world.country_by_code("LI")
        assert len(world.cities_of(us.index)) > len(world.cities_of(small.index))
