"""Tests for the IPv4 allocation plan."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo.ipam import IPAllocator, SequentialAssigner, ip_to_str, str_to_ip
from repro.geo.world import World
from repro.simulation.rng import SeededStreams


@pytest.fixture(scope="module")
def setup():
    streams = SeededStreams(5)
    world = World.build(streams)
    return world, IPAllocator(world, streams)


class TestIpStrings:
    def test_known_values(self):
        assert ip_to_str(0x01020304) == "1.2.3.4"
        assert str_to_ip("1.2.3.4") == 0x01020304
        assert ip_to_str(0xFFFFFFFF) == "255.255.255.255"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, ip):
        assert str_to_ip(ip_to_str(ip)) == ip

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            ip_to_str(2**32)
        with pytest.raises(ValueError):
            str_to_ip("1.2.3")
        with pytest.raises(ValueError):
            str_to_ip("1.2.3.999")


class TestAllocator:
    def test_blocks_disjoint_and_sorted(self, setup):
        _world, alloc = setup
        blocks = alloc.blocks()
        for prev, cur in zip(blocks, blocks[1:]):
            assert prev.end <= cur.start

    def test_no_reserved_overlap(self, setup):
        _world, alloc = setup
        reserved = [(0x0A000000, 0x0B000000), (0x7F000000, 0x80000000),
                    (0xC0A80000, 0xC0A90000), (0xE0000000, 0x100000000)]
        for block in alloc.blocks():
            for lo, hi in reserved:
                assert block.end <= lo or block.start >= hi

    def test_lookup_hits_own_org(self, setup):
        _world, alloc = setup
        for block in alloc.blocks()[:50]:
            assert alloc.org_of_ip(block.start) == block.org_index
            assert alloc.org_of_ip(block.end - 1) == block.org_index

    def test_lookup_miss(self, setup):
        _world, alloc = setup
        assert alloc.lookup(10) is None  # inside 0/8, never allocated

    def test_sample_ips_within_block(self, setup):
        _world, alloc = setup
        rng = np.random.default_rng(0)
        block = alloc.blocks()[0]
        ips = alloc.sample_ips(rng, block.org_index, 10)
        assert np.unique(ips).size == 10
        assert all(block.contains(int(ip)) for ip in ips)

    def test_sample_too_many_raises(self, setup):
        _world, alloc = setup
        rng = np.random.default_rng(0)
        block = alloc.blocks()[0]
        with pytest.raises(ValueError):
            alloc.sample_ips(rng, block.org_index, block.size + 1)


class TestSequentialAssigner:
    def test_unique_across_calls(self, setup):
        _world, alloc = setup
        assigner = SequentialAssigner(alloc)
        org = alloc.blocks()[0].org_index
        a = assigner.take(org, 10)
        b = assigner.take(org, 10)
        assert np.intersect1d(a, b).size == 0

    def test_remaining_decreases(self, setup):
        _world, alloc = setup
        assigner = SequentialAssigner(alloc)
        org = alloc.blocks()[1].org_index
        before = assigner.remaining(org)
        assigner.take(org, 7)
        assert assigner.remaining(org) == before - 7

    def test_exhaustion_raises(self, setup):
        _world, alloc = setup
        assigner = SequentialAssigner(alloc)
        org = alloc.blocks()[2].org_index
        size = assigner.remaining(org)
        assigner.take(org, size)
        with pytest.raises(ValueError):
            assigner.take(org, 1)

    def test_negative_raises(self, setup):
        _world, alloc = setup
        assigner = SequentialAssigner(alloc)
        with pytest.raises(ValueError):
            assigner.take(alloc.blocks()[0].org_index, -1)

    def test_all_ips_resolve_back(self, setup):
        _world, alloc = setup
        assigner = SequentialAssigner(alloc)
        org = alloc.blocks()[3].org_index
        for ip in assigner.take(org, 5):
            assert alloc.org_of_ip(int(ip)) == org
