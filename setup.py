"""Legacy setup shim: lets ``pip install -e .`` / ``setup.py develop``
work on offline hosts without the ``wheel`` package."""

from setuptools import setup

setup()
